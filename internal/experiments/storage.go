package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pager"
	"repro/internal/workload"
)

// StorageRow reports the footprint of one index structure over the same
// database.
type StorageRow struct {
	Structure string
	Pages     int
	Height    int
}

// StorageResult quantifies the paper's Section-4.2 storage argument: the
// class-encoded composite keys look expensive, but front compression makes
// them competitive with (or smaller than) directory-based layouts.
type StorageResult struct {
	Config workload.LargeConfig
	Rows   []StorageRow
}

// RunStorage builds the large database once per configuration and reports
// the page footprint of every structure, including a U-index with
// compression disabled (the ablation isolating the paper's claim).
func RunStorage(objects, sets, keys int, seed int64) (*StorageResult, error) {
	cfg := workload.LargeConfig{Objects: objects, Sets: sets, Keys: keys, Seed: seed}
	db, err := cachedDB(cfg)
	if err != nil {
		return nil, err
	}
	res := &StorageResult{Config: cfg}
	add := func(name string, pages int, height int) {
		res.Rows = append(res.Rows, StorageRow{Structure: name, Pages: pages, Height: height})
	}
	p, err := db.UIndex.PageCount()
	if err != nil {
		return nil, err
	}
	add("U-index (compressed)", p, db.UIndex.Tree().Height())

	// The ablation: identical entries, no front compression.
	raw, err := core.New(pager.NewMemFile(1024), db.Store, core.Spec{
		Name: "raw", Root: "Obj", Attr: "Key", NoCompression: true})
	if err != nil {
		return nil, err
	}
	if err := raw.Build(); err != nil {
		return nil, err
	}
	if p, err = raw.PageCount(); err != nil {
		return nil, err
	}
	add("U-index (no compression)", p, raw.Tree().Height())

	if p, err = db.CG.PageCount(); err != nil {
		return nil, err
	}
	add("CG-tree", p, db.CG.Height())
	if p, err = db.CH.PageCount(); err != nil {
		return nil, err
	}
	add("CH-tree (incl. overflow)", p, db.CH.Height())
	if p, err = db.H.PageCount(); err != nil {
		return nil, err
	}
	add("H-tree forest", p, 0)
	return res, nil
}

// RenderStorage writes the storage comparison.
func RenderStorage(w io.Writer, r *StorageResult) {
	keys := fmt.Sprint(r.Config.Keys)
	if r.Config.Keys == 0 {
		keys = "unique"
	}
	fmt.Fprintf(w, "Storage footprint: %d objects, %d sets, %s keys, %d-byte pages\n",
		r.Config.Objects, r.Config.Sets, keys, 1024)
	fmt.Fprintf(w, "  %-28s %8s %8s\n", "structure", "pages", "height")
	for _, row := range r.Rows {
		h := fmt.Sprint(row.Height)
		if row.Height == 0 {
			h = "-"
		}
		fmt.Fprintf(w, "  %-28s %8d %8s\n", row.Structure, row.Pages, h)
	}
	fmt.Fprintln(w)
}
