package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quick is a small grid for shape tests; the full grid runs in the
// benchmark harness and cmd/uindexbench.
func quick() GridConfig { return GridConfig{Objects: 8000, Reps: 6, Seed: 1996} }

func row(t *testing.T, r *Table1Result, id string) Table1Row {
	t.Helper()
	for _, row := range r.Rows {
		if row.ID == id {
			return row
		}
	}
	t.Fatalf("row %s missing", id)
	return Table1Row{}
}

// TestTable1Shapes verifies the paper's numbered findings about Table 1.
func TestTable1Shapes(t *testing.T) {
	r, err := RunTable1(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 20 {
		t.Fatalf("%d rows, want 20", len(r.Rows))
	}
	// Finding 1: sub-tree retrieval (2x) cheaper than full class tree (1x),
	// for the same colors.
	for _, suffix := range []string{"a", "b", "c"} {
		if q2, q1 := row(t, r, "2"+suffix), row(t, r, "1"+suffix); q2.Parallel > q1.Parallel {
			t.Errorf("query 2%s (%d) not cheaper than 1%s (%d)", suffix, q2.Parallel, suffix, q1.Parallel)
		}
	}
	// Finding 2: range growth is far below the forward scan's, which pays a
	// full value cluster per added color.
	g1 := row(t, r, "1c").Parallel - row(t, r, "1a").Parallel
	gf := row(t, r, "1c").Forward - row(t, r, "1a").Forward
	if g1 >= gf {
		t.Errorf("parallel growth %d not below forward growth %d", g1, gf)
	}
	// Finding 3: the parallel algorithm beats forward scanning on every
	// query, decisively for dispersed classes (query 4).
	for _, row := range r.Rows {
		if row.Parallel > row.Forward {
			t.Errorf("query %s: parallel %d > forward %d", row.ID, row.Parallel, row.Forward)
		}
	}
	q4a := row(t, r, "4a")
	if q4a.Parallel*3 > q4a.Forward*2 {
		t.Errorf("query 4a: parallel %d not ~2x better than forward %d", q4a.Parallel, q4a.Forward)
	}
	// Finding 4: partial-path queries (5) cheaper than full-path (6).
	if row(t, r, "5b").Parallel >= row(t, r, "6a").Parallel {
		t.Errorf("partial path 5b (%d) not cheaper than full path 6a (%d)",
			row(t, r, "5b").Parallel, row(t, r, "6a").Parallel)
	}
	// Finding 5: sub-class behaviour holds for combined queries too: the
	// Trucks variant (smaller subtree) is no more expensive.
	if row(t, r, "6b").Parallel > row(t, r, "6a").Parallel {
		t.Errorf("6b (%d) more expensive than 6a (%d)", row(t, r, "6b").Parallel, row(t, r, "6a").Parallel)
	}
	// Render sanity.
	var buf bytes.Buffer
	RenderTable1(&buf, r)
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "5a") {
		t.Error("RenderTable1 output incomplete")
	}
}

func findGroup(t *testing.T, fig *FigureResult, sets, keys int) Group {
	t.Helper()
	for _, g := range fig.Groups {
		if g.Sets == sets && g.Keys == keys {
			return g
		}
	}
	t.Fatalf("group (%d sets, %d keys) missing", sets, keys)
	return Group{}
}

// TestFigure5Shapes verifies the exact-match findings (paper points 2-3).
func TestFigure5Shapes(t *testing.T) {
	defer ResetDBCache()
	fig, err := RunFigure5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Groups) != 6 {
		t.Fatalf("%d groups, want 6", len(fig.Groups))
	}
	// Unique keys: U-index flat and far below CG at many sets.
	g := findGroup(t, fig, 40, 0)
	last := len(g.Curves) - 1
	if g.Curves[last].UNear > 2*g.Curves[0].UNear {
		t.Errorf("unique-key U-index not flat: %.1f -> %.1f", g.Curves[0].UNear, g.Curves[last].UNear)
	}
	if g.Curves[last].CG < 3*g.Curves[last].UNear {
		t.Errorf("CG (%.1f) not well above U (%.1f) for unique exact match",
			g.Curves[last].CG, g.Curves[last].UNear)
	}
	// CG grows with #sets (per-set descents).
	if g.Curves[last].CG < 2*g.Curves[0].CG {
		t.Errorf("CG exact-match cost not growing: %.1f -> %.1f", g.Curves[0].CG, g.Curves[last].CG)
	}
	// Non-unique: U still below CG at every point.
	for _, keys := range []int{100, 1000} {
		g := findGroup(t, fig, 40, keys)
		for i := range g.Curves {
			if g.Curves[i].UNear > g.Curves[i].CG {
				t.Errorf("%d keys, %d sets: U (%.1f) above CG (%.1f)",
					keys, g.XSets[i], g.Curves[i].UNear, g.Curves[i].CG)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure(&buf, fig)
	if !strings.Contains(buf.String(), "unique keys") {
		t.Error("RenderFigure output incomplete")
	}
}

// TestRangeCrossover verifies the paper's central range-query finding: the
// CG-tree wins at few sets, the U-index catches up as sets grow, and the
// crossover arrives earlier as the range shrinks (points 5-6).
func TestRangeCrossover(t *testing.T) {
	defer ResetDBCache()
	cfg := quick()
	f6, err := RunFigure6(cfg) // 10%
	if err != nil {
		t.Fatal(err)
	}
	f7, err := RunFigure7(cfg) // 2%
	if err != nil {
		t.Fatal(err)
	}
	crossover := func(g Group) int {
		// First x where the U-index is at least as good as CG; one
		// past the axis when never.
		for i := range g.Curves {
			if g.Curves[i].UNear <= g.Curves[i].CG {
				return g.XSets[i]
			}
		}
		return g.XSets[len(g.XSets)-1] + 1
	}
	g6 := findGroup(t, f6, 40, 1000)
	g7 := findGroup(t, f7, 40, 1000)
	// CG must win at 1 set for the 10% range.
	if g6.Curves[0].CG >= g6.Curves[0].UNear {
		t.Errorf("10%% range, 1 set: CG (%.1f) not below U (%.1f)", g6.Curves[0].CG, g6.Curves[0].UNear)
	}
	c6, c7 := crossover(g6), crossover(g7)
	if !(c7 <= c6) {
		t.Errorf("crossover not earlier for smaller range: 10%% at %d sets, 2%% at %d", c6, c7)
	}
	if c6 > 40 {
		t.Error("10% range: U-index never catches CG even at all 40 sets")
	}
	// Paper point 6: CG's advantage shrinks with more distinct keys —
	// compare the 1-set gap for 100 vs 1000 keys.
	gap := func(f *FigureResult, keys int) float64 {
		g := findGroup(t, f, 40, keys)
		return g.Curves[0].UNear - g.Curves[0].CG
	}
	if gap(f6, 1000) > 3*gap(f6, 100)+20 {
		t.Errorf("CG 1-set advantage did not shrink with more keys: 100-keys gap %.1f, 1000-keys gap %.1f",
			gap(f6, 100), gap(f6, 1000))
	}
}

// TestFigure8 runs the small ranges and the near/non-near delta.
func TestFigure8(t *testing.T) {
	defer ResetDBCache()
	r, err := RunFigure8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Small) != 2 {
		t.Fatalf("%d small-range figures", len(r.Small))
	}
	// 0.5% and 0.2% of 1000 keys: the U-index wins from few sets on.
	for _, fig := range r.Small {
		g := findGroup(t, &fig, 40, 1000)
		last := len(g.Curves) - 1
		if g.Curves[last].UNear >= g.Curves[last].CG {
			t.Errorf("%s: U (%.1f) not below CG (%.1f) at 40 sets",
				fig.Title, g.Curves[last].UNear, g.Curves[last].CG)
		}
	}
	// Near is never (meaningfully) worse than non-near.
	for _, g := range r.Delta.Groups {
		for i := range g.Curves {
			if g.Curves[i].UNear > g.Curves[i].UFar+1 {
				t.Errorf("near sets (%.1f) worse than non-near (%.1f) at %d sets",
					g.Curves[i].UNear, g.Curves[i].UFar, g.XSets[i])
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, r)
	if !strings.Contains(buf.String(), "near vs non-near") {
		t.Error("RenderFigure8 output incomplete")
	}
}

// TestExtendedCurves checks the CH-tree and H-tree extension measurements.
func TestExtendedCurves(t *testing.T) {
	defer ResetDBCache()
	cfg := quick()
	cfg.Extended = true
	fig, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := findGroup(t, fig, 40, 1000)
	last := len(g.Curves) - 1
	// CH-tree range cost is flat in #sets (key grouping) ...
	if g.Curves[last].CH > g.Curves[0].CH*1.3+2 {
		t.Errorf("CH-tree range cost grew with sets: %.1f -> %.1f", g.Curves[0].CH, g.Curves[last].CH)
	}
	// ... the H-tree, perfectly set-grouped, beats the key-grouped
	// CH-tree at few sets but pays a full per-set descent (its separate
	// trees share nothing), so its cost is proportional to #sets.
	if g.Curves[0].H >= g.Curves[0].CH {
		t.Errorf("H-tree (%.1f) not below CH-tree (%.1f) at 1 set", g.Curves[0].H, g.Curves[0].CH)
	}
	if g.Curves[last].H < 4*g.Curves[0].H {
		t.Errorf("H-tree cost not proportional to sets: %.1f -> %.1f", g.Curves[0].H, g.Curves[last].H)
	}
	// The CG-tree (shared directory over set-grouped leaves) never loses
	// to the H-tree it refines.
	for i := range g.Curves {
		if g.Curves[i].CG > g.Curves[i].H+1 {
			t.Errorf("CG (%.1f) above H-tree (%.1f) at %d sets", g.Curves[i].CG, g.Curves[i].H, g.XSets[i])
		}
	}
	var buf bytes.Buffer
	RenderFigure(&buf, fig)
	if !strings.Contains(buf.String(), "H-tree") {
		t.Error("extended render missing H-tree column")
	}
}
