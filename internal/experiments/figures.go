package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bufferpool"
	"repro/internal/cgtree"
	"repro/internal/chtree"
	"repro/internal/core"
	"repro/internal/htree"
	"repro/internal/workload"
)

// Curve names the measured series of the figures. UNear/UFar are the
// paper's "B-tree (near sets)" / "B-tree (non-near sets)".
type Curve struct {
	UNear, UFar, CG float64
	// Extension curves (not in the paper's figures, used by the ablation
	// benches): the CH-tree and H-tree baselines on the same query.
	CH, H float64
}

// Group is one sub-graph of a figure: page reads per number of queried
// sets, for one (total sets, distinct keys) configuration.
type Group struct {
	Sets   int // total sets in the database (8 or 40)
	Keys   int // distinct keys (0 = unique)
	XSets  []int
	Curves []Curve
	// Pool holds the buffer-pool counter deltas incurred by this group
	// when GridConfig.PoolPages > 0, nil otherwise. The curves themselves
	// are logical page reads and never depend on the pool.
	Pool *bufferpool.Stats
}

// FigureResult is one full figure: groups over the experiment grid.
type FigureResult struct {
	Title     string
	RangeFrac float64 // 0 for exact match
	Groups    []Group
}

// xAxis reproduces the paper's x-axes: 1,10,20,30,40 for 40 sets and
// 1,2,4,6,8 for 8 sets.
func xAxis(sets int) []int {
	if sets >= 40 {
		return []int{1, 10, 20, 30, 40}
	}
	return []int{1, 2, 4, 6, 8}
}

// GridConfig scales the experiment grid; Full matches the paper.
type GridConfig struct {
	Objects  int
	Reps     int
	Seed     int64
	Extended bool // also measure CH-tree and H-tree curves
	// PoolPages routes the four structures' page files through buffer
	// pools of that many frames (0 = no pool); PoolPolicy picks the
	// replacement policy. With a pool the node caches are dropped before
	// each repetition so traffic reaches it; neither step changes the
	// figures' logical page-read curves.
	PoolPages  int
	PoolPolicy string
}

// FullGrid is the paper's configuration: 150,000 objects, 100 repetitions.
func FullGrid() GridConfig { return GridConfig{Objects: 150000, Reps: 100, Seed: 1996} }

// QuickGrid is a scaled-down grid for tests and smoke runs.
func QuickGrid() GridConfig { return GridConfig{Objects: 12000, Reps: 15, Seed: 1996} }

// keyConfigs are the distinct-key configurations of Section 5.1: unique
// keys, 100 keys, 1000 keys.
var keyConfigs = []int{0, 100, 1000}

// RunFigure5 reproduces Figure 5 (exact-match queries).
func RunFigure5(cfg GridConfig) (*FigureResult, error) {
	return runFigure(cfg, "Figure 5: Exact Match Query", 0)
}

// RunFigure6 reproduces Figure 6 (range query, 10% of keyspace).
func RunFigure6(cfg GridConfig) (*FigureResult, error) {
	return runFigure(cfg, "Figure 6: Range Query (10% of Keyspace)", 0.10)
}

// RunFigure7 reproduces Figure 7 (range query, 2% of keyspace).
func RunFigure7(cfg GridConfig) (*FigureResult, error) {
	return runFigure(cfg, "Figure 7: Range Query (2% of Keyspace)", 0.02)
}

// Figure8Result holds Figure 8: the small-range graphs (0.5% and 0.2% of
// the keyspace, 1000 distinct keys) plus the near/non-near delta graph
// (10% range, 1000 keys).
type Figure8Result struct {
	Small []FigureResult // 0.5% and 0.2%, 1000 keys only
	Delta FigureResult   // 10% range, 1000 keys, near vs non-near
}

// RunFigure8 reproduces Figure 8.
func RunFigure8(cfg GridConfig) (*Figure8Result, error) {
	out := &Figure8Result{}
	for _, frac := range []float64{0.005, 0.002} {
		fig := &FigureResult{
			Title:     fmt.Sprintf("Figure 8: Range Query (%g%% of Keyspace), 1000 keys", frac*100),
			RangeFrac: frac,
		}
		for _, sets := range []int{40, 8} {
			g, err := runGroup(cfg, sets, 1000, frac)
			if err != nil {
				return nil, err
			}
			fig.Groups = append(fig.Groups, *g)
		}
		out.Small = append(out.Small, *fig)
	}
	delta := FigureResult{
		Title:     "Figure 8: near vs non-near sets (10% range, 1000 keys)",
		RangeFrac: 0.10,
	}
	for _, sets := range []int{40, 8} {
		g, err := runGroup(cfg, sets, 1000, 0.10)
		if err != nil {
			return nil, err
		}
		delta.Groups = append(delta.Groups, *g)
	}
	out.Delta = delta
	return out, nil
}

func runFigure(cfg GridConfig, title string, frac float64) (*FigureResult, error) {
	fig := &FigureResult{Title: title, RangeFrac: frac}
	for _, sets := range []int{40, 8} {
		for _, k := range keyConfigs {
			g, err := runGroup(cfg, sets, k, frac)
			if err != nil {
				return nil, err
			}
			fig.Groups = append(fig.Groups, *g)
		}
	}
	return fig, nil
}

// dbCache memoizes the generated databases across figures: the same
// (objects, sets, keys, seed) database backs every range fraction.
var dbCache = struct {
	sync.Mutex
	m map[workload.LargeConfig]*workload.LargeDB
}{m: map[workload.LargeConfig]*workload.LargeDB{}}

func cachedDB(cfg workload.LargeConfig) (*workload.LargeDB, error) {
	dbCache.Lock()
	defer dbCache.Unlock()
	if db, ok := dbCache.m[cfg]; ok {
		return db, nil
	}
	db, err := workload.NewLargeDB(cfg)
	if err != nil {
		return nil, err
	}
	dbCache.m[cfg] = db
	return db, nil
}

// ResetDBCache drops the memoized databases (tests use it to bound memory).
func ResetDBCache() {
	dbCache.Lock()
	defer dbCache.Unlock()
	dbCache.m = map[workload.LargeConfig]*workload.LargeDB{}
}

// runGroup measures one sub-graph.
func runGroup(cfg GridConfig, sets, keys int, frac float64) (*Group, error) {
	db, err := cachedDB(workload.LargeConfig{
		Objects: cfg.Objects, Sets: sets, Keys: keys, Seed: cfg.Seed,
		PoolPages: cfg.PoolPages, PoolPolicy: cfg.PoolPolicy,
	})
	if err != nil {
		return nil, err
	}
	g := &Group{Sets: sets, Keys: keys, XSets: xAxis(sets)}
	before := db.PoolStats()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(sets)*7 + int64(keys)*13 + int64(frac*1e6)))
	for _, n := range g.XSets {
		c, err := measurePoint(db, n, frac, cfg.Reps, cfg.Extended, rng)
		if err != nil {
			return nil, err
		}
		g.Curves = append(g.Curves, *c)
	}
	if cfg.PoolPages > 0 {
		// The cached database's pools accumulate across groups and
		// figures; report this group's delta.
		after := db.PoolStats()
		after.Sub(before)
		g.Pool = &after
	}
	return g, nil
}

// measurePoint averages page reads over reps repetitions for one x value.
func measurePoint(db *workload.LargeDB, nSets int, frac float64, reps int, extended bool, rng *rand.Rand) (*Curve, error) {
	domain := db.KeyDomain()
	var cur Curve
	for rep := 0; rep < reps; rep++ {
		// With pools in play, start each repetition cold at the tree
		// layer so node fetches reach the pools. Dropping the caches
		// consumes no randomness and the logical counters are accounted
		// before any cache, so the measured curves are unchanged.
		if len(db.Pools) > 0 {
			if err := db.DropCaches(); err != nil {
				return nil, err
			}
		}
		// Pick the queried key (exact) or range.
		var lo, hi uint64
		if frac == 0 {
			lo = uint64(rng.Intn(domain))
			hi = lo
		} else {
			width := max(1, int(frac*float64(domain)))
			start := rng.Intn(max(1, domain-width+1))
			lo, hi = uint64(start), uint64(start+width-1)
		}

		near := workload.QueriedSets(db.Config.Sets, nSets, true, rng)
		far := workload.QueriedSets(db.Config.Sets, nSets, false, rng)
		// The paper generates the CG-tree's sets randomly ("set
		// adjacency does not influence its performance").
		cgSets := workload.QueriedSets(db.Config.Sets, nSets, false, rng)

		uq := func(setIdx []int) (int, error) {
			pos := core.Position{}
			for _, s := range setIdx {
				pos.Alts = append(pos.Alts, core.ClassPattern{Class: db.Sets[s]})
			}
			var vp core.ValuePred
			switch {
			case frac == 0:
				vp = core.Exact(lo)
			case db.Config.Keys > 0:
				vp = core.Uint64Range(lo, hi) // enumerable range
			default:
				vp = core.Range(lo, hi) // unique keys: continuous
			}
			_, stats, err := db.UIndex.Execute(core.Query{Value: vp, Positions: []core.Position{pos}}, core.Parallel, nil)
			return stats.PagesRead, err
		}
		pNear, err := uq(near)
		if err != nil {
			return nil, err
		}
		pFar, err := uq(far)
		if err != nil {
			return nil, err
		}
		cgIDs := make([]cgtree.SetID, len(cgSets))
		for i, s := range cgSets {
			cgIDs[i] = cgtree.SetID(s)
		}
		var cgStats cgtree.Stats
		if frac == 0 {
			_, cgStats, err = db.CG.ExactMatch(workload.Key8(lo), cgIDs, nil)
		} else {
			_, cgStats, err = db.CG.RangeQuery(workload.Key8(lo), workload.Key8(hi), cgIDs, nil)
		}
		if err != nil {
			return nil, err
		}
		cur.UNear += float64(pNear)
		cur.UFar += float64(pFar)
		cur.CG += float64(cgStats.PagesRead)

		if extended {
			chIDs := make([]chtree.SetID, len(cgSets))
			hIDs := make([]htree.SetID, len(cgSets))
			for i, s := range cgSets {
				chIDs[i] = chtree.SetID(s)
				hIDs[i] = htree.SetID(s)
			}
			var chStats chtree.Stats
			var hStats htree.Stats
			if frac == 0 {
				_, chStats, err = db.CH.ExactMatch(workload.Key8(lo), chIDs, nil)
				if err != nil {
					return nil, err
				}
				_, hStats, err = db.H.ExactMatch(workload.Key8(lo), hIDs, nil)
			} else {
				_, chStats, err = db.CH.RangeQuery(workload.Key8(lo), workload.Key8(hi), chIDs, nil)
				if err != nil {
					return nil, err
				}
				_, hStats, err = db.H.RangeQuery(workload.Key8(lo), workload.Key8(hi), hIDs, nil)
			}
			if err != nil {
				return nil, err
			}
			cur.CH += float64(chStats.PagesRead)
			cur.H += float64(hStats.PagesRead)
		}
	}
	n := float64(reps)
	cur.UNear /= n
	cur.UFar /= n
	cur.CG /= n
	cur.CH /= n
	cur.H /= n
	return &cur, nil
}
