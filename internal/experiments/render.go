package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable1 writes the Table-1 result in the paper's layout, with the
// paper's own numbers alongside for comparison. Results from a pooled run
// (RunTable1With) get an extra physical-reads column and a pool summary.
func RenderTable1(w io.Writer, r *Table1Result) {
	fmt.Fprintf(w, "Table 1: visited nodes, %d records, color index of %d nodes (paper: 12,000 records, 1562 nodes)\n",
		r.Records, r.TotalNodes)
	pooled := r.Pool != nil
	if pooled {
		fmt.Fprintf(w, "%-4s %-40s %9s %9s %8s %14s %9s\n",
			"id", "query", "parallel", "forward", "matches", "paper(par|fwd)", "physical")
		fmt.Fprintln(w, strings.Repeat("-", 100))
	} else {
		fmt.Fprintf(w, "%-4s %-40s %9s %9s %8s %14s\n",
			"id", "query", "parallel", "forward", "matches", "paper(par|fwd)")
		fmt.Fprintln(w, strings.Repeat("-", 90))
	}
	for _, row := range r.Rows {
		paper := ""
		if p, ok := PaperTable1[row.ID]; ok {
			if p[1] > 0 {
				paper = fmt.Sprintf("%d | %d", p[0], p[1])
			} else {
				paper = fmt.Sprintf("%d", p[0])
			}
		}
		if pooled {
			fmt.Fprintf(w, "%-4s %-40s %9d %9d %8d %14s %9d\n",
				row.ID, row.Description, row.Parallel, row.Forward, row.Matches, paper, row.Physical)
		} else {
			fmt.Fprintf(w, "%-4s %-40s %9d %9d %8d %14s\n",
				row.ID, row.Description, row.Parallel, row.Forward, row.Matches, paper)
		}
	}
	if pooled {
		fmt.Fprintf(w, "buffer pool: %d hits, %d misses (hit ratio %.1f%%), %d evictions, %d physical reads\n",
			r.Pool.Hits, r.Pool.Misses, 100*r.Pool.HitRate(), r.Pool.Evictions, r.Pool.PhysicalReads)
	}
}

// RenderFigure writes one figure's groups as aligned series tables.
func RenderFigure(w io.Writer, fig *FigureResult) {
	fmt.Fprintf(w, "%s\n", fig.Title)
	for _, g := range fig.Groups {
		keys := fmt.Sprint(g.Keys)
		if g.Keys == 0 {
			keys = "unique"
		}
		fmt.Fprintf(w, "\n  %d sets, %s keys (pages read, avg):\n", g.Sets, keys)
		hasExt := false
		for _, c := range g.Curves {
			if c.CH > 0 || c.H > 0 {
				hasExt = true
			}
		}
		if hasExt {
			fmt.Fprintf(w, "  %6s %12s %12s %10s %10s %10s\n", "#sets", "U(near)", "U(non-near)", "CG-tree", "CH-tree", "H-tree")
			for i, x := range g.XSets {
				c := g.Curves[i]
				fmt.Fprintf(w, "  %6d %12.1f %12.1f %10.1f %10.1f %10.1f\n", x, c.UNear, c.UFar, c.CG, c.CH, c.H)
			}
		} else {
			fmt.Fprintf(w, "  %6s %12s %12s %10s\n", "#sets", "U(near)", "U(non-near)", "CG-tree")
			for i, x := range g.XSets {
				c := g.Curves[i]
				fmt.Fprintf(w, "  %6d %12.1f %12.1f %10.1f\n", x, c.UNear, c.UFar, c.CG)
			}
		}
		if g.Pool != nil {
			fmt.Fprintf(w, "  pool: %d hits, %d misses (hit ratio %.1f%%), %d physical reads\n",
				g.Pool.Hits, g.Pool.Misses, 100*g.Pool.HitRate(), g.Pool.PhysicalReads)
		}
	}
	fmt.Fprintln(w)
}

// RenderFigure8 writes the composite Figure 8.
func RenderFigure8(w io.Writer, r *Figure8Result) {
	for i := range r.Small {
		RenderFigure(w, &r.Small[i])
	}
	fig := r.Delta
	fmt.Fprintf(w, "%s\n", fig.Title)
	for _, g := range fig.Groups {
		fmt.Fprintf(w, "\n  %d sets (U-index pages read, avg):\n", g.Sets)
		fmt.Fprintf(w, "  %6s %12s %12s %12s\n", "#sets", "near", "non-near", "delta")
		for i, x := range g.XSets {
			c := g.Curves[i]
			fmt.Fprintf(w, "  %6d %12.1f %12.1f %12.1f\n", x, c.UNear, c.UFar, c.UFar-c.UNear)
		}
	}
	fmt.Fprintln(w)
}
