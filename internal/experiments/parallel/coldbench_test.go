package parallel

import (
	"context"
	"testing"

	uindex "repro"
)

// TestPrefetchInvarianceAcrossShapes is the facade-level page-count
// invariance check: every read shape of the benchmark suite must return the
// same matches and the same logical cost counters whether or not the
// frontier prefetcher runs — prefetch may only move wall-clock time, never
// the paper's metrics. It also confirms the prefetcher actually engages on
// the pooled database (the invariance of a dead code path proves nothing).
func TestPrefetchInvarianceAcrossShapes(t *testing.T) {
	build := func(noPrefetch bool) *uindex.Database {
		db, err := buildParallelDB(Config{
			Objects: 4000, Seed: 7, PoolPages: 256, NoPrefetch: noPrefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	off := build(true)
	defer off.Close()
	on := build(false)
	defer on.Close()

	ctx := context.Background()
	issued := 0
	for _, sh := range readShapes() {
		// Cold node caches and pools: the frontier drops cache-resident
		// children, so a build-warm database would issue no hints at all.
		if err := off.DropPageCaches(); err != nil {
			t.Fatal(err)
		}
		if err := on.DropPageCaches(); err != nil {
			t.Fatal(err)
		}
		index, q := sh.job()
		offM, offSt, err := off.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg))
		if err != nil {
			t.Fatalf("%s off: %v", sh.name, err)
		}
		onM, onSt, err := on.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg))
		if err != nil {
			t.Fatalf("%s on: %v", sh.name, err)
		}
		if len(offM) != len(onM) {
			t.Fatalf("%s: %d matches without prefetch, %d with", sh.name, len(offM), len(onM))
		}
		for i := range offM {
			if offM[i].Value != onM[i].Value || len(offM[i].Path) != len(onM[i].Path) {
				t.Fatalf("%s: match %d differs: %+v vs %+v", sh.name, i, offM[i], onM[i])
			}
		}
		if offSt.PagesRead != onSt.PagesRead {
			t.Errorf("%s: PagesRead %d without prefetch, %d with", sh.name, offSt.PagesRead, onSt.PagesRead)
		}
		if offSt.EntriesScanned != onSt.EntriesScanned || offSt.Matches != onSt.Matches {
			t.Errorf("%s: scan counters differ: off=%+v on=%+v", sh.name, offSt, onSt)
		}
		if offSt.PrefetchIssued != 0 {
			t.Errorf("%s: NoPrefetch database issued %d prefetch hints", sh.name, offSt.PrefetchIssued)
		}
		issued += onSt.PrefetchIssued
	}
	if issued == 0 {
		t.Fatalf("no shape issued any prefetch hints on the pooled database")
	}
}

// TestRunColdSmoke drives the cold benchmark end to end at a tiny scale:
// disk-backed databases, real page-cache eviction per iteration, and the
// built-in cross-setting PagesRead invariance check in RunCold.
func TestRunColdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cold benchmark evicts OS caches; skipped in -short")
	}
	r, err := RunCold(ColdConfig{
		Objects: 600, Seed: 3, Iterations: 1, PoolPages: 128, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2*len(readShapes()) {
		t.Fatalf("got %d points, want %d", len(r.Points), 2*len(readShapes()))
	}
	for _, p := range r.Points {
		if p.NsPerOp <= 0 || p.PagesRead <= 0 {
			t.Errorf("%s prefetch=%v: implausible point %+v", p.Name, p.Prefetch, p)
		}
		if !p.Prefetch && p.PrefetchIssued != 0 {
			t.Errorf("%s: prefetch-off point issued %d hints", p.Name, p.PrefetchIssued)
		}
	}
}
