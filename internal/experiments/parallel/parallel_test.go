package parallel

import "testing"

// TestRunParallel smoke-tests the throughput benchmark at a small scale,
// with and without a buffer pool.
func TestRunParallel(t *testing.T) {
	for _, pool := range []int{0, 64} {
		r, err := RunParallel(Config{Workers: 4, Jobs: 32, Objects: 400, PoolPages: pool, Seed: 7})
		if err != nil {
			t.Fatalf("pool=%d: %v", pool, err)
		}
		if r.QueriesPerSec <= 0 {
			t.Fatalf("pool=%d: no throughput reported", pool)
		}
		if r.PagesRead == 0 {
			t.Fatalf("pool=%d: no logical pages counted", pool)
		}
		if pool == 0 && r.Pool != nil {
			t.Fatal("pool counters reported without a pool")
		}
		if pool > 0 {
			if r.Pool == nil {
				t.Fatal("no pool counters with a pool configured")
			}
			if r.Pool.Hits+r.Pool.Misses == 0 {
				t.Fatal("pool saw no traffic; DropCaches did not take effect")
			}
		}
	}
}
