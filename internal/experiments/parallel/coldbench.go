package parallel

// Cold-cache benchmark: wall-clock latency of the read-path query shapes
// when every cache between the query and the platters is empty — node
// caches dropped, buffer pools reset, and the OS page cache evicted
// (posix_fadvise DONTNEED) before every timed query. This is the regime
// the Parscan frontier prefetcher targets: with warm caches batched
// read-ahead has nothing to hide, but a cold descent pays one device
// round-trip per page unless the next level is fetched as one batch.
// Each shape runs under prefetch on and off against identically built
// disk-backed databases, so the paired points isolate the prefetcher.
// Results serialize to BENCH_cold.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	uindex "repro"
	"repro/internal/pager"
)

// ColdConfig sizes the cold-cache benchmark.
type ColdConfig struct {
	// Objects is the number of vehicles in the database (<=0: 30000 —
	// larger than the warm suite's default because a cold descent only
	// becomes I/O-bound once the tree spans enough pages; Short caps it
	// lower).
	Objects    int
	Seed       int64  // workload seed
	Short      bool   // CI smoke scale: small database, fewer iterations
	Dir        string // scratch directory for the disk files ("" = os.MkdirTemp)
	Iterations int    // timed cold queries per point (<=0: 5; Short: 3)
	PoolPages  int    // buffer-pool frames (<=0: 512)
}

// ColdPoint is one query shape under one prefetch setting, cold caches.
type ColdPoint struct {
	Name       string  `json:"name"`
	Prefetch   bool    `json:"prefetch"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"` // median over the cold iterations
	// SamplesNs are the individual cold-iteration latencies behind the
	// median, in measurement order — the spread is the evidence for how
	// much device noise the median is defending against.
	SamplesNs []int64 `json:"samples_ns"`
	// PagesRead is the query's logical distinct-page count — the paper's
	// metric. It is identical with prefetch on and off (RunCold verifies
	// this invariance and fails otherwise).
	PagesRead int `json:"pages_read"`
	// PrefetchIssued counts pages the scan handed to the prefetcher per
	// query (0 with prefetch off).
	PrefetchIssued int `json:"prefetch_issued"`
}

// ColdResult is the whole suite, written to BENCH_cold.json.
type ColdResult struct {
	Objects    int   `json:"objects"`
	Seed       int64 `json:"seed"`
	Short      bool  `json:"short"`
	Iterations int   `json:"iterations"`
	GoMaxProcs int   `json:"gomaxprocs"`
	// Uring reports whether batched reads went through io_uring (false:
	// the portable bounded-goroutine preadv fallback).
	Uring  bool        `json:"io_uring"`
	Points []ColdPoint `json:"points"`
	// Pool is the prefetch-on database's cumulative buffer-pool counters
	// over the whole suite — evidence the prefetch path actually ran
	// (PrefetchPages, PrefetchHits) and how much read-ahead missed
	// (PrefetchWasted).
	Pool uindex.BufferPoolStats `json:"pool_totals"`
}

// RunCold builds one disk-backed database per prefetch setting (identical
// contents, same seed) and measures every read shape cold: each timed
// iteration drops the node caches, resets the buffer pools, and evicts the
// OS page cache, then runs exactly one query. The off/on iterations of a
// shape are interleaved — off, on, off, on, … — so slow drift in device
// latency (writeback, queue state, host noise) lands on both settings
// equally instead of biasing whichever ran last, and each point reports the
// median iteration rather than the mean, which a single stalled read would
// otherwise dominate.
func RunCold(cfg ColdConfig) (*ColdResult, error) {
	if cfg.Objects <= 0 {
		cfg.Objects = 30000
	}
	if cfg.Short && cfg.Objects > 1500 {
		cfg.Objects = 1500
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 15
		if cfg.Short {
			cfg.Iterations = 3
		}
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 512
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "uindex-coldbench-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	res := &ColdResult{
		Objects:    cfg.Objects,
		Seed:       cfg.Seed,
		Short:      cfg.Short,
		Iterations: cfg.Iterations,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Uring:      pager.UringAvailable(),
	}
	ctx := context.Background()
	settings := []bool{false, true} // off first: the speedup reads "off vs on"
	dbs := make([]*uindex.Database, len(settings))
	defer func() {
		for _, db := range dbs {
			if db != nil {
				db.Close()
			}
		}
	}()
	for i, prefetch := range settings {
		sub := filepath.Join(dir, map[bool]string{false: "nopf", true: "pf"}[prefetch])
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		db, err := buildParallelDB(Config{
			Objects: cfg.Objects, Seed: cfg.Seed,
			PoolPages: cfg.PoolPages, Dir: sub,
			Durability: uindex.DurabilityCheckpoint,
			NoPrefetch: !prefetch,
		})
		if err != nil {
			return nil, err
		}
		dbs[i] = db
	}
	for _, sh := range readShapes() {
		index, q := sh.job()
		samples := make([][]time.Duration, len(settings))
		stats := make([]uindex.Stats, len(settings))
		// Validation runs: one warm query so the timed region never sees a
		// first-query error path, then one discarded cold pass per database
		// — the first eviction after a build flushes writeback the builds
		// left behind, and that flush must not land inside a timed
		// iteration.
		for _, db := range dbs {
			if _, _, err := db.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg)); err != nil {
				return nil, fmt.Errorf("%s: %w", sh.name, err)
			}
			if err := db.DropPageCaches(); err != nil {
				return nil, fmt.Errorf("%s: drop caches: %w", sh.name, err)
			}
			if _, _, err := db.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg)); err != nil {
				return nil, fmt.Errorf("%s: %w", sh.name, err)
			}
		}
		for it := 0; it < cfg.Iterations; it++ {
			for i, db := range dbs {
				if err := db.DropPageCaches(); err != nil {
					return nil, fmt.Errorf("%s: drop caches: %w", sh.name, err)
				}
				start := time.Now()
				_, st, err := db.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg))
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sh.name, err)
				}
				samples[i] = append(samples[i], elapsed)
				stats[i] = st
			}
		}
		for i, prefetch := range settings {
			ns := make([]int64, len(samples[i]))
			for j, d := range samples[i] {
				ns[j] = d.Nanoseconds()
			}
			res.Points = append(res.Points, ColdPoint{
				Name:           sh.name,
				Prefetch:       prefetch,
				Iterations:     cfg.Iterations,
				NsPerOp:        float64(medianDuration(samples[i]).Nanoseconds()),
				SamplesNs:      ns,
				PagesRead:      stats[i].PagesRead,
				PrefetchIssued: stats[i].PrefetchIssued,
			})
		}
	}
	res.Pool, _ = dbs[1].PoolStats()
	// Logical page-count invariance: the same shape must touch the same
	// distinct pages whether or not read-ahead ran.
	for _, on := range res.Points {
		if !on.Prefetch {
			continue
		}
		for _, off := range res.Points {
			if off.Name == on.Name && !off.Prefetch && off.PagesRead != on.PagesRead {
				return nil, fmt.Errorf("%s: logical pages read differ: %d with prefetch, %d without",
					on.Name, on.PagesRead, off.PagesRead)
			}
		}
	}
	return res, nil
}

// medianDuration returns the median of samples (average of the middle pair
// when even), sorting a copy.
func medianDuration(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// RenderCold prints the suite as a table, pairing prefetch off/on per shape
// with the wall-clock speedup.
func RenderCold(w io.Writer, r *ColdResult) {
	fmt.Fprintf(w, "cold-cache benchmark (%d objects, seed %d, %d iterations/point, GOMAXPROCS %d, io_uring %v)\n",
		r.Objects, r.Seed, r.Iterations, r.GoMaxProcs, r.Uring)
	fmt.Fprintf(w, "  %-14s %12s %12s %8s %8s %10s\n",
		"shape", "off ns/op", "on ns/op", "speedup", "pages", "prefetched")
	for _, on := range r.Points {
		if !on.Prefetch {
			continue
		}
		for _, off := range r.Points {
			if off.Name != on.Name || off.Prefetch {
				continue
			}
			speedup := 0.0
			if on.NsPerOp > 0 {
				speedup = off.NsPerOp / on.NsPerOp
			}
			fmt.Fprintf(w, "  %-14s %12.0f %12.0f %7.2fx %8d %10d\n",
				on.Name, off.NsPerOp, on.NsPerOp, speedup, on.PagesRead, on.PrefetchIssued)
		}
	}
	fmt.Fprintf(w, "  pool: %d batched reads, %d prefetched pages, %d prefetch hits, %d wasted\n",
		r.Pool.BatchReads, r.Pool.PrefetchPages, r.Pool.PrefetchHits, r.Pool.PrefetchWasted)
}

// WriteColdJSON serializes the suite for BENCH_cold.json.
func WriteColdJSON(w io.Writer, r *ColdResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
