package parallel

import (
	"context"
	"io"
	"log/slog"
	"testing"

	"repro/internal/server"
)

// TestNetShapesAnswer pins that every textual shape of the network
// benchmark parses and answers with matches over the wire against the
// benchmark database — without paying for a full timed run.
func TestNetShapesAnswer(t *testing.T) {
	db, err := buildParallelDB(Config{Objects: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := server.New(server.Config{
		DB: db, Addr: "127.0.0.1:0",
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	c, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, sh := range netShapes {
		ms, stats, err := c.Query(ctx, sh.index, sh.query)
		if err != nil {
			t.Fatalf("%s (%s): %v", sh.name, sh.query, err)
		}
		if len(ms) == 0 {
			t.Errorf("%s (%s): no matches on the benchmark database", sh.name, sh.query)
		}
		if stats.Matches != len(ms) {
			t.Errorf("%s: stats.Matches=%d, len=%d", sh.name, stats.Matches, len(ms))
		}
	}
}
