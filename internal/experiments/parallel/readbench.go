package parallel

// Read-path benchmark: the per-query CPU cost of the zero-copy read path,
// measured through the public facade with testing.Benchmark so ns/op and
// allocs/op come from the same machinery as `go test -bench`. Each query
// shape runs twice — node cache enabled and disabled — because the cache-off
// numbers are the baseline the tentpole's allocs/op claim is measured
// against. Results serialize to BENCH_read.json (the repo's perf
// trajectory file).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	uindex "repro"
)

// ReadConfig sizes the read-path benchmark.
type ReadConfig struct {
	Objects int   // vehicles in the database (<=0: 6000; Short caps lower)
	Seed    int64 // workload seed
	Short   bool  // CI smoke scale: small database, same code paths
}

// ReadPoint is one measured point: a query shape under one cache setting.
type ReadPoint struct {
	Name          string  `json:"name"`       // QueryExact, QueryRange, ...
	NodeCache     bool    `json:"node_cache"` // decoded-node cache enabled?
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// ReadResult is the whole suite, written to BENCH_read.json by `make bench`.
type ReadResult struct {
	Objects    int   `json:"objects"`
	Seed       int64 `json:"seed"`
	Short      bool  `json:"short"`
	GoMaxProcs int   `json:"gomaxprocs"`
	// Transport and Addr are set by RunReadNet ("tcp" + the measured
	// endpoint); empty for the in-process suite.
	Transport string      `json:"transport,omitempty"`
	Addr      string      `json:"addr,omitempty"`
	Points    []ReadPoint `json:"points"`
	// NodeCache is the cache-enabled database's cumulative hit/miss
	// counters over the whole suite — direct evidence the measured hot
	// path actually ran against a warm cache.
	NodeCache uindex.NodeCacheStats `json:"node_cache_totals"`
}

// readShape is one query shape of the suite; every shape is a single query
// per op so queries/sec is comparable across shapes.
type readShape struct {
	name string
	alg  uindex.Algorithm
	job  func() (string, uindex.Query)
}

// readShapes returns the four shapes of the satellite benchmark contract:
// repeated exact match, value range, whole-subtree probe, and a dispersed
// multi-interval Parscan descent.
func readShapes() []readShape {
	return []readShape{
		{"QueryExact", uindex.Parallel, func() (string, uindex.Query) {
			return "color", uindex.Query{
				Value:     uindex.Exact("Red"),
				Positions: []uindex.Position{uindex.OnExact("Automobile")},
			}
		}},
		{"QueryRange", uindex.Parallel, func() (string, uindex.Query) {
			return "color", uindex.Query{
				Value:     uindex.Range("Black", "Red"),
				Positions: []uindex.Position{uindex.On("Vehicle")},
			}
		}},
		{"QuerySubtree", uindex.Parallel, func() (string, uindex.Query) {
			return "age", uindex.Query{
				Value:     uindex.Exact(uint64(45)),
				Positions: []uindex.Position{uindex.Any, uindex.Any, uindex.On("Automobile")},
			}
		}},
		{"QueryParscan", uindex.Parallel, func() (string, uindex.Query) {
			return "color", uindex.Query{
				Value:     uindex.OneOf("Red", "Blue", "Green"),
				Positions: []uindex.Position{uindex.OneOfClasses("CompactAutomobile", "Truck")},
			}
		}},
	}
}

// RunRead builds one database per cache setting and measures every shape
// under both. The two databases hold identical objects (same seed), so any
// difference between the paired points is the cache, not the data.
func RunRead(cfg ReadConfig) (*ReadResult, error) {
	if cfg.Objects <= 0 {
		cfg.Objects = 6000
	}
	if cfg.Short && cfg.Objects > 1500 {
		cfg.Objects = 1500
	}
	res := &ReadResult{
		Objects:    cfg.Objects,
		Seed:       cfg.Seed,
		Short:      cfg.Short,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	ctx := context.Background()
	for _, cached := range []bool{true, false} {
		ncache := 0 // btree default size
		if !cached {
			ncache = -1 // disabled: every fetch decodes from page bytes
		}
		db, err := buildParallelDB(Config{
			Objects: cfg.Objects, Seed: cfg.Seed, NodeCacheSize: ncache,
		})
		if err != nil {
			return nil, err
		}
		for _, sh := range readShapes() {
			index, q := sh.job()
			// Warm outside the timed region: the steady state under
			// measurement is the repeated-query regime.
			if _, _, err := db.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg)); err != nil {
				db.Close()
				return nil, err
			}
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := db.Query(ctx, index, q, uindex.WithAlgorithm(sh.alg)); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				db.Close()
				return nil, fmt.Errorf("%s: %w", sh.name, benchErr)
			}
			p := ReadPoint{
				Name:        sh.name,
				NodeCache:   cached,
				Iterations:  r.N,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if p.NsPerOp > 0 {
				p.QueriesPerSec = 1e9 / p.NsPerOp
			}
			res.Points = append(res.Points, p)
		}
		if cached {
			res.NodeCache = db.NodeCacheStats()
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RenderRead prints the suite as a table, pairing cache on/off per shape.
func RenderRead(w io.Writer, r *ReadResult) {
	fmt.Fprintf(w, "read-path benchmark (%d objects, seed %d, GOMAXPROCS %d)\n",
		r.Objects, r.Seed, r.GoMaxProcs)
	if r.Transport != "" {
		fmt.Fprintf(w, "  over %s://%s\n", r.Transport, r.Addr)
	}
	fmt.Fprintf(w, "  %-14s %-6s %12s %12s %12s %14s\n",
		"shape", "cache", "ns/op", "B/op", "allocs/op", "queries/sec")
	for _, p := range r.Points {
		cache := "off"
		if p.NodeCache {
			cache = "on"
		}
		fmt.Fprintf(w, "  %-14s %-6s %12.0f %12d %12d %14.0f\n",
			p.Name, cache, p.NsPerOp, p.BytesPerOp, p.AllocsPerOp, p.QueriesPerSec)
	}
	fmt.Fprintf(w, "  node cache: %d hits, %d misses, %d resident nodes\n",
		r.NodeCache.Hits, r.NodeCache.Misses, r.NodeCache.Entries)
}

// WriteReadJSON serializes the suite for BENCH_read.json.
func WriteReadJSON(w io.Writer, r *ReadResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
