package parallel

// Network read benchmark: the readbench suite measured through uindexd's
// wire protocol instead of in-process calls, so the delta between
// BENCH_read.json and a -addr run is the protocol + scheduling overhead.
// The shapes are the same four as readShapes, phrased in the querylang
// textual grammar the protocol carries.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"testing"

	"repro/internal/server"
)

// netShapes are the textual twins of readShapes — same indexes, same
// classes, same value predicates.
var netShapes = []struct {
	name, index, query string
}{
	{"QueryExact", "color", "(Color=Red, Automobile)"},
	{"QueryRange", "color", "(Color=[Black-Red], Vehicle*)"},
	{"QuerySubtree", "age", "(Age=45, ?, ?, Automobile*)"},
	{"QueryParscan", "color", "(Color={Red,Blue,Green}, [CompactAutomobile*, Truck*])"},
}

// NetAddrSelf asks RunReadNet to serve the benchmark database itself on a
// loopback listener, measuring the full client/server round trip with no
// external process.
const NetAddrSelf = "self"

// RunReadNet measures every shape over the network. addr NetAddrSelf
// builds the benchmark database and serves it in-process on a loopback
// port; any other addr dials an already-running uindexd, which must serve
// a database with the readbench schema (uindexd's built-in demo database
// qualifies — the counts differ, the shapes still answer).
func RunReadNet(cfg ReadConfig, addr string) (*ReadResult, error) {
	if cfg.Objects <= 0 {
		cfg.Objects = 6000
	}
	if cfg.Short && cfg.Objects > 1500 {
		cfg.Objects = 1500
	}
	res := &ReadResult{
		Objects:    cfg.Objects,
		Seed:       cfg.Seed,
		Short:      cfg.Short,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Transport:  "tcp",
		Addr:       addr,
	}

	if addr == NetAddrSelf {
		db, err := buildParallelDB(Config{Objects: cfg.Objects, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		defer db.Close()
		srv, err := server.New(server.Config{
			DB:     db,
			Addr:   "127.0.0.1:0",
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer srv.Shutdown(context.Background())
		res.Addr = srv.Addr()
		if err := benchNetShapes(res, srv.Addr()); err != nil {
			return nil, err
		}
		res.NodeCache = db.NodeCacheStats()
		return res, nil
	}
	res.Objects = 0 // remote database: its size is not ours to report
	if err := benchNetShapes(res, addr); err != nil {
		return nil, err
	}
	return res, nil
}

// benchNetShapes appends one measured point per shape, all cache-on (the
// server owns its cache configuration).
func benchNetShapes(res *ReadResult, addr string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return fmt.Errorf("netbench: %w", err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, sh := range netShapes {
		// Warm outside the timed region, and fail fast on a server whose
		// schema does not answer the shape.
		if _, _, err := c.Query(ctx, sh.index, sh.query); err != nil {
			return fmt.Errorf("netbench %s: %w", sh.name, err)
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Query(ctx, sh.index, sh.query); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return fmt.Errorf("netbench %s: %w", sh.name, benchErr)
		}
		p := ReadPoint{
			Name:        sh.name,
			NodeCache:   true,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if p.NsPerOp > 0 {
			p.QueriesPerSec = 1e9 / p.NsPerOp
		}
		res.Points = append(res.Points, p)
	}
	return nil
}
