package parallel

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	uindex "repro"
)

// MixedConfig sizes the mixed read/write throughput benchmark.
type MixedConfig struct {
	Config
	// Duration is how long each phase (read-only, then mixed) runs.
	Duration time.Duration
	// Writers is how many concurrent writer goroutines run in the mixed
	// phase (<=0: 1).
	Writers int
	// WriteRate paces each writer to this many mutations/sec (<=0: the
	// default 500). Pacing separates what the benchmark measures — whether
	// writers *block* readers — from plain CPU contention: an unthrottled
	// writer on a small machine steals cycles from readers even though no
	// reader ever waits on a lock. Use WriteRate -1 for unthrottled.
	WriteRate int
}

// MixedResult compares read throughput without and with concurrent writers.
// Under the snapshot read path, writers never block readers, so WithWriterQPS
// should stay close to ReadOnlyQPS (the acceptance bar is within 10%).
type MixedResult struct {
	Config        MixedConfig
	ReadOnlyQPS   float64 // queries/sec, no writers
	WithWriterQPS float64 // queries/sec while writers commit
	Ratio         float64 // WithWriterQPS / ReadOnlyQPS
	Writes        int64   // mutations committed during the mixed phase
	WritesPerSec  float64
}

// readPhase runs query workers against db until the deadline and returns the
// number of completed queries.
func readPhase(db *uindex.Database, jobs []uindex.QueryJob, workers int, d time.Duration) (int64, error) {
	var done atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; time.Now().Before(deadline); i++ {
				job := jobs[i%len(jobs)]
				if _, _, err := db.Query(ctx, job.Index, job.Query, uindex.WithAlgorithm(job.Algorithm)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return done.Load(), err
	}
	return done.Load(), nil
}

// RunMixed measures read throughput twice — first with no writers, then with
// concurrent writers committing inserts and attribute updates — and reports
// the ratio. The writers run the full facade write path (per-index write
// locks, copy-on-write commits), so the ratio is the end-to-end price a
// reader pays for concurrent write traffic.
func RunMixed(cfg MixedConfig) (*MixedResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 400
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 6000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.WriteRate == 0 {
		cfg.WriteRate = 500
	}
	db, err := buildParallelDB(cfg.Config)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.DropCaches(); err != nil {
		return nil, err
	}
	jobs := parallelJobs(cfg.Jobs, cfg.Seed)

	// Phase 1: read-only baseline.
	baseline, err := readPhase(db, jobs, cfg.Workers, cfg.Duration)
	if err != nil {
		return nil, err
	}

	// Phase 2: same read workload with writers committing concurrently.
	stop := make(chan struct{})
	var writes atomic.Int64
	var writerErr atomic.Value
	var wwg sync.WaitGroup
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	for w := 0; w < cfg.Writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			var tick *time.Ticker
			if cfg.WriteRate > 0 {
				tick = time.NewTicker(time.Second / time.Duration(cfg.WriteRate))
				defer tick.Stop()
			}
			var mine []uindex.OID
			for i := 0; ; i++ {
				if tick != nil {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				var err error
				switch {
				case len(mine) > 0 && i%4 == 3: // recolor one of ours
					err = db.Set(mine[i%len(mine)], "Color", colors[i%len(colors)])
				default:
					var oid uindex.OID
					oid, err = db.Insert(classes[(w+i)%len(classes)], uindex.Attrs{
						"Color": colors[(w+i)%len(colors)],
					})
					if err == nil {
						mine = append(mine, oid)
					}
				}
				if err != nil {
					writerErr.CompareAndSwap(nil, err)
					return
				}
				writes.Add(1)
			}
		}(w)
	}
	mixed, err := readPhase(db, jobs, cfg.Workers, cfg.Duration)
	close(stop)
	wwg.Wait()
	if err != nil {
		return nil, err
	}
	if werr, ok := writerErr.Load().(error); ok && werr != nil {
		return nil, fmt.Errorf("writer: %w", werr)
	}

	secs := cfg.Duration.Seconds()
	res := &MixedResult{
		Config:        cfg,
		ReadOnlyQPS:   float64(baseline) / secs,
		WithWriterQPS: float64(mixed) / secs,
		Writes:        writes.Load(),
		WritesPerSec:  float64(writes.Load()) / secs,
	}
	if res.ReadOnlyQPS > 0 {
		res.Ratio = res.WithWriterQPS / res.ReadOnlyQPS
	}
	return res, nil
}

// RenderMixed prints one RunMixed result.
func RenderMixed(w io.Writer, r *MixedResult) {
	rate := "unthrottled"
	if r.Config.WriteRate > 0 {
		rate = fmt.Sprintf("%d writes/sec each", r.Config.WriteRate)
	}
	fmt.Fprintf(w, "mixed read/write throughput (%d objects, %d read workers, %d writers %s, %s per phase)\n",
		r.Config.Objects, r.Config.Workers, r.Config.Writers, rate, r.Config.Duration)
	fmt.Fprintf(w, "  read-only      %.0f queries/sec\n", r.ReadOnlyQPS)
	fmt.Fprintf(w, "  with writers   %.0f queries/sec\n", r.WithWriterQPS)
	fmt.Fprintf(w, "  ratio          %.3f (1.0 = writers cost readers nothing)\n", r.Ratio)
	fmt.Fprintf(w, "  writes         %d committed (%.0f/sec)\n", r.Writes, r.WritesPerSec)
}
