package parallel

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	uindex "repro"
)

// MixedConfig sizes the mixed read/write throughput benchmark.
type MixedConfig struct {
	Config
	// Duration is how long each phase (read-only, then mixed) runs.
	Duration time.Duration
	// Writers is how many concurrent writer goroutines run in the mixed
	// phase (<=0: 1).
	Writers int
	// WriteRate paces each writer to this many mutations/sec (<=0: the
	// default 500). Pacing separates what the benchmark measures — whether
	// writers *block* readers — from plain CPU contention: an unthrottled
	// writer on a small machine steals cycles from readers even though no
	// reader ever waits on a lock. Use WriteRate -1 for unthrottled.
	WriteRate int
	// WriteBatch, when >1, groups each writer's mutations into batches of
	// this size applied with Database.Apply — one writer-lock acquisition
	// per shard per batch instead of per mutation, and under
	// DurabilitySync one fsync pair per batch. <=1 issues individual
	// Insert/Set calls. Pacing ticks per mutation either way.
	WriteBatch int
}

// WriterStat is one writer goroutine's slice of the mixed phase.
type WriterStat struct {
	Writer       int     `json:"writer"`
	Writes       int64   `json:"writes"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// MixedResult compares read throughput without and with concurrent writers.
// Under the snapshot read path, writers never block readers, so WithWriterQPS
// should stay close to ReadOnlyQPS (the acceptance bar is within 10%).
type MixedResult struct {
	Config        MixedConfig
	ReadOnlyQPS   float64 // queries/sec, no writers
	WithWriterQPS float64 // queries/sec while writers commit
	Ratio         float64 // WithWriterQPS / ReadOnlyQPS
	Writes        int64   // mutations committed during the mixed phase
	WritesPerSec  float64
	// Batches counts Apply calls issued during the mixed phase (0 unless
	// WriteBatch > 1).
	Batches int64
	// PerWriter breaks the mixed-phase mutation count down by writer
	// goroutine — the fairness view: under one global writer lock the
	// writers serialize and starve unevenly; per-shard locks level them.
	PerWriter []WriterStat
	// ShardDist is the color index's per-shard distribution after the
	// mixed phase: entries resident and writer-lock acquisitions per
	// shard. A single-shard run reports one row.
	ShardDist []uindex.ShardStat
	// WAL fields report the write-ahead log's activity over the mixed
	// phase when the benchmark ran under DurabilityWAL: records appended,
	// group-commit fsyncs, and fsyncs per committed record — the
	// group-commit amortization headline, below 1.0 whenever concurrent
	// committers shared an fsync.
	WALEnabled      bool
	WALAppends      uint64
	WALFsyncs       uint64
	FsyncsPerCommit float64
}

// readPhase runs query workers against db until the deadline and returns the
// number of completed queries.
func readPhase(db *uindex.Database, jobs []uindex.QueryJob, workers int, d time.Duration) (int64, error) {
	var done atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; time.Now().Before(deadline); i++ {
				job := jobs[i%len(jobs)]
				if _, _, err := db.Query(ctx, job.Index, job.Query, uindex.WithAlgorithm(job.Algorithm)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return done.Load(), err
	}
	return done.Load(), nil
}

// RunMixed measures read throughput twice — first with no writers, then with
// concurrent writers committing inserts and attribute updates — and reports
// the ratio. The writers run the full facade write path (per-index write
// locks, copy-on-write commits), so the ratio is the end-to-end price a
// reader pays for concurrent write traffic.
func RunMixed(cfg MixedConfig) (*MixedResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 400
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 6000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.WriteRate == 0 {
		cfg.WriteRate = 500
	}
	db, err := buildParallelDB(cfg.Config)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.DropCaches(); err != nil {
		return nil, err
	}
	jobs := parallelJobs(cfg.Jobs, cfg.Seed)

	// Phase 1: read-only baseline.
	baseline, err := readPhase(db, jobs, cfg.Workers, cfg.Duration)
	if err != nil {
		return nil, err
	}

	// Phase 2: same read workload with writers committing concurrently.
	preWAL := db.Metrics()
	stop := make(chan struct{})
	perWriter := make([]atomic.Int64, cfg.Writers)
	var batches atomic.Int64
	var writerErr atomic.Value
	var wwg sync.WaitGroup
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	for w := 0; w < cfg.Writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			var tick *time.Ticker
			if cfg.WriteRate > 0 {
				tick = time.NewTicker(time.Second / time.Duration(cfg.WriteRate))
				defer tick.Stop()
			}
			var mine []uindex.OID
			var batch uindex.Batch
			flush := func() error {
				n := batch.Len()
				if n == 0 {
					return nil
				}
				res, err := db.Apply(context.Background(), &batch)
				batch.Reset()
				if err != nil {
					return err
				}
				mine = append(mine, res.OIDs...)
				perWriter[w].Add(int64(n))
				batches.Add(1)
				return nil
			}
			for i := 0; ; i++ {
				if tick != nil {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				var err error
				switch {
				case cfg.WriteBatch > 1:
					// Batched surface: accumulate, apply every WriteBatch
					// mutations. Sets only reference OIDs from earlier
					// batches — a batch cannot reference its own inserts.
					if len(mine) > 0 && i%4 == 3 {
						batch.Set(mine[i%len(mine)], "Color", colors[i%len(colors)])
					} else {
						batch.Insert(classes[(w+i)%len(classes)], uindex.Attrs{
							"Color": colors[(w+i)%len(colors)],
						})
					}
					if batch.Len() >= cfg.WriteBatch {
						err = flush()
					}
				case len(mine) > 0 && i%4 == 3: // recolor one of ours
					err = db.Set(mine[i%len(mine)], "Color", colors[i%len(colors)])
					if err == nil {
						perWriter[w].Add(1)
					}
				default:
					var oid uindex.OID
					oid, err = db.Insert(classes[(w+i)%len(classes)], uindex.Attrs{
						"Color": colors[(w+i)%len(colors)],
					})
					if err == nil {
						mine = append(mine, oid)
						perWriter[w].Add(1)
					}
				}
				if err != nil {
					writerErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	mixed, err := readPhase(db, jobs, cfg.Workers, cfg.Duration)
	close(stop)
	wwg.Wait()
	if err != nil {
		return nil, err
	}
	if werr, ok := writerErr.Load().(error); ok && werr != nil {
		return nil, fmt.Errorf("writer: %w", werr)
	}

	secs := cfg.Duration.Seconds()
	res := &MixedResult{
		Config:        cfg,
		ReadOnlyQPS:   float64(baseline) / secs,
		WithWriterQPS: float64(mixed) / secs,
		Batches:       batches.Load(),
		PerWriter:     make([]WriterStat, cfg.Writers),
	}
	for w := range perWriter {
		n := perWriter[w].Load()
		res.PerWriter[w] = WriterStat{Writer: w, Writes: n, WritesPerSec: float64(n) / secs}
		res.Writes += n
	}
	res.WritesPerSec = float64(res.Writes) / secs
	if res.ReadOnlyQPS > 0 {
		res.Ratio = res.WithWriterQPS / res.ReadOnlyQPS
	}
	if dist, ok := db.ShardStats("color"); ok {
		res.ShardDist = dist
	}
	if postWAL := db.Metrics(); postWAL.WALEnabled {
		res.WALEnabled = true
		res.WALAppends = postWAL.WALAppends - preWAL.WALAppends
		res.WALFsyncs = postWAL.WALFsyncs - preWAL.WALFsyncs
		if res.WALAppends > 0 {
			res.FsyncsPerCommit = float64(res.WALFsyncs) / float64(res.WALAppends)
		}
	}
	return res, nil
}

// RenderMixed prints one RunMixed result.
func RenderMixed(w io.Writer, r *MixedResult) {
	rate := "unthrottled"
	if r.Config.WriteRate > 0 {
		rate = fmt.Sprintf("%d writes/sec each", r.Config.WriteRate)
	}
	shards := r.Config.Shards
	if shards < 1 {
		shards = 1
	}
	fmt.Fprintf(w, "mixed read/write throughput (%d objects, %d read workers, %d writers %s, %d shards, %s per phase)\n",
		r.Config.Objects, r.Config.Workers, r.Config.Writers, rate, shards, r.Config.Duration)
	fmt.Fprintf(w, "  read-only      %.0f queries/sec\n", r.ReadOnlyQPS)
	fmt.Fprintf(w, "  with writers   %.0f queries/sec\n", r.WithWriterQPS)
	fmt.Fprintf(w, "  ratio          %.3f (1.0 = writers cost readers nothing)\n", r.Ratio)
	fmt.Fprintf(w, "  writes         %d committed (%.0f/sec)\n", r.Writes, r.WritesPerSec)
	if r.Config.WriteBatch > 1 {
		fmt.Fprintf(w, "  batches        %d Apply calls of up to %d mutations\n", r.Batches, r.Config.WriteBatch)
	}
	for _, ws := range r.PerWriter {
		fmt.Fprintf(w, "  writer %-2d      %d writes (%.0f/sec)\n", ws.Writer, ws.Writes, ws.WritesPerSec)
	}
	for _, sd := range r.ShardDist {
		fmt.Fprintf(w, "  shard %-2d       %d entries, %d lock acquisitions (color index)\n",
			sd.Shard, sd.Entries, sd.Writes)
	}
	if r.WALEnabled {
		fmt.Fprintf(w, "  wal            %d records, %d group-commit fsyncs (%.3f fsyncs/commit)\n",
			r.WALAppends, r.WALFsyncs, r.FsyncsPerCommit)
	}
}

// mixedJSON is the stable JSON shape WriteMixedJSON emits (BENCH_shard.json
// in the repo's bench pipeline).
type mixedJSON struct {
	Objects       int                `json:"objects"`
	Workers       int                `json:"workers"`
	Writers       int                `json:"writers"`
	WriteRate     int                `json:"write_rate"`
	WriteBatch    int                `json:"write_batch"`
	Shards        int                `json:"shards"`
	Durability    int                `json:"durability"`
	DurationSecs  float64            `json:"duration_secs"`
	ReadOnlyQPS   float64            `json:"read_only_qps"`
	WithWriterQPS float64            `json:"with_writer_qps"`
	Ratio         float64            `json:"ratio"`
	Writes        int64              `json:"writes"`
	WritesPerSec  float64            `json:"writes_per_sec"`
	Batches       int64              `json:"batches"`
	PerWriter     []WriterStat       `json:"per_writer"`
	ShardDist     []uindex.ShardStat `json:"shard_dist"`
	// WAL fields are zero unless the run used DurabilityWAL.
	WALEnabled      bool    `json:"wal_enabled"`
	WALAppends      uint64  `json:"wal_appends"`
	WALFsyncs       uint64  `json:"wal_fsyncs"`
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"`
}

// WriteMixedJSON emits one RunMixed result as JSON — the machine-readable
// side of RenderMixed, for comparing shard counts across runs.
func WriteMixedJSON(w io.Writer, r *MixedResult) error {
	shards := r.Config.Shards
	if shards < 1 {
		shards = 1
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mixedJSON{
		Objects:         r.Config.Objects,
		Workers:         r.Config.Workers,
		Writers:         r.Config.Writers,
		WriteRate:       r.Config.WriteRate,
		WriteBatch:      r.Config.WriteBatch,
		Shards:          shards,
		Durability:      int(r.Config.Durability),
		DurationSecs:    r.Config.Duration.Seconds(),
		ReadOnlyQPS:     r.ReadOnlyQPS,
		WithWriterQPS:   r.WithWriterQPS,
		Ratio:           r.Ratio,
		Writes:          r.Writes,
		WritesPerSec:    r.WritesPerSec,
		Batches:         r.Batches,
		PerWriter:       r.PerWriter,
		ShardDist:       r.ShardDist,
		WALEnabled:      r.WALEnabled,
		WALAppends:      r.WALAppends,
		WALFsyncs:       r.WALFsyncs,
		FsyncsPerCommit: r.FsyncsPerCommit,
	})
}
