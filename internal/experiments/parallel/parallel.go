// Package parallel is the concurrent-throughput benchmark: one
// QueryParallel batch of mixed exact/range/subtree/path queries against
// the engine facade, reporting aggregate queries/sec and buffer-pool
// hit/miss counters. It lives apart from the main experiments package
// because it drives the public repro facade (the experiments package is
// itself imported by the facade's benchmarks).
package parallel

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	uindex "repro"
)

// Config sizes the concurrent-throughput benchmark.
type Config struct {
	Workers   int // goroutines in the query pool (<=0: GOMAXPROCS)
	Jobs      int // queries in the batch
	Objects   int // vehicles in the database
	PoolPages int // buffer-pool frames (0 = direct page file)
	Policy    string
	Seed      int64
	// NodeCacheSize sizes the decoded-node cache (0 = engine default,
	// negative = disabled). Purely a CPU knob: logical page counts are
	// identical either way.
	NodeCacheSize int
	// Dir, when non-empty, backs the index trees with checksummed disk
	// files in that directory; Durability selects the commit discipline
	// (DurabilitySync shows the per-mutation fsync cost in the mixed
	// benchmark's writer throughput).
	Dir        string
	Durability uindex.Durability
	// WALMaxDelay is the group-commit linger under DurabilityWAL: the log
	// daemon waits this long after the first committer before fsyncing, so
	// concurrent committers share the fsync. 0 flushes immediately —
	// coalescing then depends on commits arriving within one fsync's
	// duration.
	WALMaxDelay time.Duration
	// Shards partitions each index into this many class-code shards, each
	// with its own writer lock (0/1 = unsharded). The mixed benchmark's
	// writers spread across the shard map, so writer throughput scales
	// with the shard count until the cores run out.
	Shards int
	// NoPrefetch disables the Parscan frontier prefetcher on every index —
	// the cold benchmark's control setting. Logical page counts are
	// identical either way; only wall-clock latency moves.
	NoPrefetch bool
}

// Result reports aggregate throughput of one QueryParallel batch
// plus the buffer pool's hit/miss counters (zero when no pool).
type Result struct {
	Config        Config
	Elapsed       time.Duration
	QueriesPerSec float64
	Matches       int // total matches across the batch
	PagesRead     int // sum of per-query logical distinct-page counts
	Pool          *uindex.BufferPoolStats
	// Decoded-node cache counters summed over the batch's queries, plus
	// the entry bytes the misses materialized — the CPU-cost side the
	// logical page counts don't see.
	NodeCacheHits   int
	NodeCacheMisses int
	BytesDecoded    int64
}

// buildParallelDB grows a vehicle/company/employee database with a
// class-hierarchy color index and a two-ref age path index — the same shape
// as the engine's concurrency tests, at benchmark scale.
func buildParallelDB(cfg Config) (*uindex.Database, error) {
	s := uindex.NewSchema()
	add := func(name, parent string, attrs ...uindex.Attr) error {
		return s.AddClass(name, parent, attrs...)
	}
	if err := add("Employee", "", uindex.Attr{Name: "Age", Type: uindex.Uint64}); err != nil {
		return nil, err
	}
	if err := add("Company", "",
		uindex.Attr{Name: "Name", Type: uindex.String},
		uindex.Attr{Name: "President", Ref: "Employee"}); err != nil {
		return nil, err
	}
	if err := add("Vehicle", "",
		uindex.Attr{Name: "Color", Type: uindex.String},
		uindex.Attr{Name: "ManufacturedBy", Ref: "Company"}); err != nil {
		return nil, err
	}
	for _, c := range [][2]string{{"Automobile", "Vehicle"}, {"Truck", "Vehicle"}, {"CompactAutomobile", "Automobile"}} {
		if err := add(c[0], c[1]); err != nil {
			return nil, err
		}
	}
	db, err := uindex.NewDatabaseWith(s, uindex.Options{
		PoolPages: cfg.PoolPages, PoolPolicy: cfg.Policy, NodeCacheSize: cfg.NodeCacheSize,
		Dir: cfg.Dir, Durability: cfg.Durability, WALMaxDelay: cfg.WALMaxDelay,
		Shards: cfg.Shards, NoPrefetch: cfg.NoPrefetch,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	var employees, companies []uindex.OID
	for i := 0; i < cfg.Objects/10+1; i++ {
		oid, err := db.Insert("Employee", uindex.Attrs{"Age": uint64(30 + rng.Intn(40))})
		if err != nil {
			return nil, err
		}
		employees = append(employees, oid)
	}
	for i := 0; i < cfg.Objects/20+1; i++ {
		oid, err := db.Insert("Company", uindex.Attrs{
			"Name":      fmt.Sprintf("Co-%04d", i),
			"President": employees[rng.Intn(len(employees))],
		})
		if err != nil {
			return nil, err
		}
		companies = append(companies, oid)
	}
	if err := db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(uindex.IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Objects; i++ {
		if _, err := db.Insert(classes[rng.Intn(len(classes))], uindex.Attrs{
			"Color":          colors[rng.Intn(len(colors))],
			"ManufacturedBy": companies[rng.Intn(len(companies))],
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// parallelJobs generates the mixed exact/range/subtree/path batch.
func parallelJobs(n int, seed int64) []uindex.QueryJob {
	rng := rand.New(rand.NewSource(seed + 1))
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	jobs := make([]uindex.QueryJob, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0: // exact color over a class subtree
			jobs = append(jobs, uindex.QueryJob{Index: "color", Query: uindex.Query{
				Value:     uindex.Exact(colors[rng.Intn(len(colors))]),
				Positions: []uindex.Position{uindex.On(classes[rng.Intn(len(classes))])},
			}})
		case 1: // color range
			lo, hi := rng.Intn(len(colors)), rng.Intn(len(colors))
			if colors[lo] > colors[hi] {
				lo, hi = hi, lo
			}
			jobs = append(jobs, uindex.QueryJob{Index: "color", Query: uindex.Query{
				Value:     uindex.Range(colors[lo], colors[hi]),
				Positions: []uindex.Position{uindex.On("Vehicle")},
			}})
		case 2: // exact path-index probe
			jobs = append(jobs, uindex.QueryJob{Index: "age", Query: uindex.Query{
				Value: uindex.Exact(uint64(30 + rng.Intn(40))),
			}})
		default: // age range restricted to a vehicle subtree (terminal-first)
			lo := uint64(30 + rng.Intn(30))
			jobs = append(jobs, uindex.QueryJob{Index: "age", Query: uindex.Query{
				Value:     uindex.Range(lo, lo+8),
				Positions: []uindex.Position{uindex.Any, uindex.Any, uindex.On(classes[rng.Intn(len(classes))])},
			}})
		}
	}
	return jobs
}

// RunParallel builds the database, executes one QueryParallel batch, and
// reports aggregate throughput plus pool counters. Pool counters are
// snapshotted around the batch only, so build-time traffic is excluded.
func RunParallel(cfg Config) (*Result, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 400
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 6000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	db, err := buildParallelDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// Clear the trees' write-path node caches so the measured reads go
	// through the page files and their pools.
	if err := db.DropCaches(); err != nil {
		return nil, err
	}
	jobs := parallelJobs(cfg.Jobs, cfg.Seed)

	before, hasPool := db.PoolStats()
	start := time.Now()
	results := db.QueryParallel(context.Background(), jobs, cfg.Workers)
	elapsed := time.Since(start)

	res := &Result{Config: cfg, Elapsed: elapsed}
	if secs := elapsed.Seconds(); secs > 0 {
		res.QueriesPerSec = float64(len(jobs)) / secs
	}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("job %d: %w", i, r.Err)
		}
		res.Matches += r.Stats.Matches
		res.PagesRead += r.Stats.PagesRead
		res.NodeCacheHits += r.Stats.NodeCacheHits
		res.NodeCacheMisses += r.Stats.NodeCacheMisses
		res.BytesDecoded += r.Stats.BytesDecoded
	}
	if hasPool {
		after, _ := db.PoolStats()
		delta := uindex.BufferPoolStats{
			Hits:           after.Hits - before.Hits,
			Misses:         after.Misses - before.Misses,
			Evictions:      after.Evictions - before.Evictions,
			Writebacks:     after.Writebacks - before.Writebacks,
			Flushes:        after.Flushes - before.Flushes,
			PhysicalReads:  after.PhysicalReads - before.PhysicalReads,
			PhysicalWrites: after.PhysicalWrites - before.PhysicalWrites,
		}
		res.Pool = &delta
	}
	return res, nil
}

// Render prints one RunParallel result.
func Render(w io.Writer, r *Result) {
	fmt.Fprintf(w, "parallel query throughput (%d objects, %d jobs, %d workers)\n",
		r.Config.Objects, r.Config.Jobs, r.Config.Workers)
	fmt.Fprintf(w, "  elapsed        %s\n", r.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "  queries/sec    %.0f\n", r.QueriesPerSec)
	fmt.Fprintf(w, "  matches        %d\n", r.Matches)
	fmt.Fprintf(w, "  logical pages  %d (sum of per-query distinct counts)\n", r.PagesRead)
	fmt.Fprintf(w, "  node cache     %d hits / %d misses, %d entry bytes decoded\n",
		r.NodeCacheHits, r.NodeCacheMisses, r.BytesDecoded)
	if r.Pool != nil {
		fmt.Fprintf(w, "  pool hits      %d\n", r.Pool.Hits)
		fmt.Fprintf(w, "  pool misses    %d\n", r.Pool.Misses)
		fmt.Fprintf(w, "  pool hit-rate  %.1f%%\n", r.Pool.HitRate()*100)
		fmt.Fprintf(w, "  physical reads %d\n", r.Pool.PhysicalReads)
	} else {
		fmt.Fprintf(w, "  pool           off (run with -poolpages N for hit/miss counters)\n")
	}
}
