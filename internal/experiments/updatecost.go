package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/nix"
	"repro/internal/pager"
	"repro/internal/store"
	"repro/internal/workload"
)

// UpdateCostRow measures one update operation on one structure.
type UpdateCostRow struct {
	Operation  string
	Structure  string
	PagesWrite float64 // physical page writes per operation (flushed)
	Micros     float64 // wall time per operation
}

// UpdateCostResult is the Section-4.2/4.4 update-cost comparison between
// the U-index and the NIX structure on the Figure-1 database:
//
//   - end-of-path object insert/delete (a vehicle): the paper predicts NIX
//     "to have a worse update performance for end of path objects" because
//     of its auxiliary structure;
//   - mid-path reference change (a president switch): both restructure,
//     the U-index as a clustered batch of plain B-tree updates.
type UpdateCostResult struct {
	Rows []UpdateCostRow
}

// RunUpdateCost measures the update operations, averaging over reps.
func RunUpdateCost(seed int64, reps int) (*UpdateCostResult, error) {
	db, err := workload.NewFigure1DB(seed)
	if err != nil {
		return nil, err
	}
	uFile := pager.NewMemFile(1024)
	uIx, err := core.New(uFile, db.Store, core.Spec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		return nil, err
	}
	if err := uIx.Build(); err != nil {
		return nil, err
	}
	nFile := pager.NewMemFile(1024)
	nIx, err := nix.New(nFile, db.Store, nix.Spec{
		Name: "nix-age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		return nil, err
	}
	if err := nIx.Build(); err != nil {
		return nil, err
	}

	res := &UpdateCostResult{}
	measure := func(op, structure string, f pager.File, flush func() error, body func() error) error {
		start := time.Now()
		before := f.Stats().Writes
		for i := 0; i < reps; i++ {
			if err := body(); err != nil {
				return fmt.Errorf("%s/%s: %w", op, structure, err)
			}
			// Dirty pages only reach the file on flush; flushing per
			// operation makes the write counter meaningful.
			if err := flush(); err != nil {
				return err
			}
		}
		writes := float64(f.Stats().Writes-before) / float64(reps)
		res.Rows = append(res.Rows, UpdateCostRow{
			Operation: op, Structure: structure,
			PagesWrite: writes,
			Micros:     float64(time.Since(start).Microseconds()) / float64(reps),
		})
		return nil
	}

	company := db.Companies[0]
	// End-of-path insert + delete (one vehicle round trip).
	if err := measure("vehicle insert+delete", "U-index", uFile, uIx.Tree().Flush, func() error {
		oid, err := db.Store.Insert("Automobile", store.Attrs{
			"Name": "upd", "Color": "Grey", "ManufacturedBy": company})
		if err != nil {
			return err
		}
		if err := uIx.Add(oid); err != nil {
			return err
		}
		if err := uIx.Remove(oid); err != nil {
			return err
		}
		return db.Store.Delete(oid)
	}); err != nil {
		return nil, err
	}
	if err := measure("vehicle insert+delete", "NIX", nFile, nIx.DropCache, func() error {
		oid, err := db.Store.Insert("Automobile", store.Attrs{
			"Name": "upd", "Color": "Grey", "ManufacturedBy": company})
		if err != nil {
			return err
		}
		vals, err := nIx.ValuesThrough(oid)
		if err != nil {
			return err
		}
		if err := nIx.Refresh(vals); err != nil {
			return err
		}
		rvals, err := nIx.RemoveObject(oid)
		if err != nil {
			return err
		}
		if err := db.Store.Delete(oid); err != nil {
			return err
		}
		return nIx.Refresh(rvals)
	}); err != nil {
		return nil, err
	}

	// Mid-path reference change: a president switch, back and forth.
	e1 := db.Employees[0]
	e2 := db.Employees[1]
	flip := e1
	if err := measure("president switch", "U-index", uFile, uIx.Tree().Flush, func() error {
		old, err := uIx.EntriesFor(company)
		if err != nil {
			return err
		}
		if flip == e1 {
			flip = e2
		} else {
			flip = e1
		}
		if _, err := db.Store.SetAttr(company, "President", flip); err != nil {
			return err
		}
		newKeys, err := uIx.EntriesFor(company)
		if err != nil {
			return err
		}
		return uIx.ApplyDiff(old, newKeys)
	}); err != nil {
		return nil, err
	}
	if err := measure("president switch", "NIX", nFile, nIx.DropCache, func() error {
		before, err := nIx.ValuesThrough(company)
		if err != nil {
			return err
		}
		if flip == e1 {
			flip = e2
		} else {
			flip = e1
		}
		if _, err := db.Store.SetAttr(company, "President", flip); err != nil {
			return err
		}
		after, err := nIx.ValuesThrough(company)
		if err != nil {
			return err
		}
		for k := range after {
			before[k] = true
		}
		return nIx.Refresh(before)
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// RenderUpdateCost writes the update-cost comparison.
func RenderUpdateCost(w io.Writer, r *UpdateCostResult) {
	fmt.Fprintln(w, "Update cost (Section 4.2/4.4): U-index vs NIX, Figure-1 database")
	fmt.Fprintf(w, "  %-24s %-10s %14s %12s\n", "operation", "structure", "page writes/op", "µs/op")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-24s %-10s %14.1f %12.1f\n", row.Operation, row.Structure, row.PagesWrite, row.Micros)
	}
	fmt.Fprintln(w)
}
