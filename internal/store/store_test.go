package store

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", schema.Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "",
		schema.Attr{Name: "Name", Type: encoding.AttrString},
		schema.Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("AutoCompany", "Company"))
	must(s.AddClass("Vehicle", "",
		schema.Attr{Name: "Color", Type: encoding.AttrString},
		schema.Attr{Name: "ManufacturedBy", Ref: "Company"},
		schema.Attr{Name: "CoManufacturers", Ref: "Company", Multi: true}))
	must(s.AddClass("Automobile", "Vehicle"))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertGetDelete(t *testing.T) {
	st := New(testSchema(t))
	e, err := st.Insert("Employee", Attrs{"Age": 50})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	o, ok := st.Get(e)
	if !ok || o.Class != "Employee" {
		t.Fatalf("Get = %+v, %v", o, ok)
	}
	if v, ok := o.Attr("Age"); !ok || v.(int) != 50 {
		t.Fatalf("Age = %v, %v", v, ok)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	if err := st.Delete(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(e); ok {
		t.Fatal("deleted object still present")
	}
	if err := st.Delete(e); err == nil {
		t.Fatal("double delete succeeded")
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after delete", st.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	st := New(testSchema(t))
	if _, err := st.Insert("Ghost", nil); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := st.Insert("Employee", Attrs{"Ghost": 1}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := st.Insert("Employee", Attrs{"Age": "old"}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := st.Insert("Company", Attrs{"President": OID(99)}); err == nil {
		t.Error("dangling reference accepted")
	}
	e, _ := st.Insert("Employee", Attrs{"Age": 40})
	if _, err := st.Insert("Vehicle", Attrs{"ManufacturedBy": e}); err == nil {
		t.Error("reference to wrong class accepted")
	}
	c, _ := st.Insert("Company", Attrs{"President": e})
	if _, err := st.Insert("Vehicle", Attrs{"ManufacturedBy": []OID{c}}); err == nil {
		t.Error("[]OID for single-valued ref accepted")
	}
	if _, err := st.Insert("Vehicle", Attrs{"CoManufacturers": c}); err == nil {
		t.Error("OID for multi-valued ref accepted")
	}
	if _, err := st.Insert("Vehicle", Attrs{"ManufacturedBy": "Fiat"}); err == nil {
		t.Error("non-OID reference value accepted")
	}
}

func TestSubclassReference(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	ac, err := st.Insert("AutoCompany", Attrs{"President": e})
	if err != nil {
		t.Fatal(err)
	}
	// A Vehicle may reference an AutoCompany where a Company is declared.
	if _, err := st.Insert("Vehicle", Attrs{"ManufacturedBy": ac}); err != nil {
		t.Fatalf("subclass reference rejected: %v", err)
	}
}

func TestExtents(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	c, _ := st.Insert("Company", Attrs{"President": e})
	ac, _ := st.Insert("AutoCompany", Attrs{"President": e})
	if got := st.Extent("Company"); len(got) != 1 || got[0] != c {
		t.Fatalf("Extent(Company) = %v", got)
	}
	he := st.HierarchyExtent("Company")
	if len(he) != 2 || he[0] != c || he[1] != ac {
		t.Fatalf("HierarchyExtent(Company) = %v", he)
	}
	if got := st.Extent("Vehicle"); len(got) != 0 {
		t.Fatalf("Extent(Vehicle) = %v", got)
	}
}

func TestReverseReferences(t *testing.T) {
	st := New(testSchema(t))
	e1, _ := st.Insert("Employee", Attrs{"Age": 50})
	e2, _ := st.Insert("Employee", Attrs{"Age": 60})
	c1, _ := st.Insert("Company", Attrs{"President": e1})
	c2, _ := st.Insert("Company", Attrs{"President": e1})
	if got := st.Referencing("President", e1); len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Fatalf("Referencing = %v", got)
	}
	// The paper's running update example: a president switches companies.
	if _, err := st.SetAttr(c1, "President", e2); err != nil {
		t.Fatal(err)
	}
	if got := st.Referencing("President", e1); len(got) != 1 || got[0] != c2 {
		t.Fatalf("Referencing after SetAttr = %v", got)
	}
	if got := st.Referencing("President", e2); len(got) != 1 || got[0] != c1 {
		t.Fatalf("Referencing new president = %v", got)
	}
	// Deleting an object unlinks its outgoing references.
	if err := st.Delete(c2); err != nil {
		t.Fatal(err)
	}
	if got := st.Referencing("President", e1); len(got) != 0 {
		t.Fatalf("Referencing after delete = %v", got)
	}
}

func TestMultiValueReferences(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	c1, _ := st.Insert("Company", Attrs{"President": e})
	c2, _ := st.Insert("Company", Attrs{"President": e})
	v, err := st.Insert("Vehicle", Attrs{"Color": "Red", "CoManufacturers": []OID{c1, c2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Referencing("CoManufacturers", c1); len(got) != 1 || got[0] != v {
		t.Fatalf("Referencing multi = %v", got)
	}
	if got := st.DerefMulti(v, "CoManufacturers"); len(got) != 2 {
		t.Fatalf("DerefMulti = %v", got)
	}
	if got := st.DerefMulti(v, "ManufacturedBy"); got != nil {
		t.Fatalf("DerefMulti unset = %v", got)
	}
}

func TestDeref(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	c, _ := st.Insert("Company", Attrs{"President": e})
	got, ok := st.Deref(c, "President")
	if !ok || got != e {
		t.Fatalf("Deref = %v, %v", got, ok)
	}
	if _, ok := st.Deref(c, "Name"); ok {
		t.Error("Deref of unset attr succeeded")
	}
	if _, ok := st.Deref(999, "President"); ok {
		t.Error("Deref of missing object succeeded")
	}
}

func TestSetAttrValidation(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	if _, err := st.SetAttr(999, "Age", 1); err == nil {
		t.Error("SetAttr on missing object succeeded")
	}
	if _, err := st.SetAttr(e, "Age", "old"); err == nil {
		t.Error("SetAttr with wrong type succeeded")
	}
	old, err := st.SetAttr(e, "Age", 46)
	if err != nil || old.(int) != 45 {
		t.Fatalf("SetAttr returned old=%v err=%v", old, err)
	}
}

func TestSelect(t *testing.T) {
	st := New(testSchema(t))
	for i := 0; i < 10; i++ {
		if _, err := st.Insert("Employee", Attrs{"Age": 40 + i}); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Select("Employee", "Age", func(v any) bool { return v.(int) >= 45 })
	if len(got) != 5 {
		t.Fatalf("Select = %v", got)
	}
}

func TestAttrsCopy(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	o, _ := st.Get(e)
	cp := o.Attrs()
	cp["Age"] = 99
	if v, _ := o.Attr("Age"); v.(int) != 45 {
		t.Fatal("Attrs() exposed internal state")
	}
}

func TestSnapshotRestore(t *testing.T) {
	st := New(testSchema(t))
	e, _ := st.Insert("Employee", Attrs{"Age": 45})
	c, _ := st.Insert("Company", Attrs{"Name": "Fiat", "President": e})
	v, _ := st.Insert("Vehicle", Attrs{"Color": "Red", "ManufacturedBy": c})
	if err := st.Delete(v); err != nil { // leave a gap in the OID space
		t.Fatal(err)
	}
	objs, next := st.Snapshot()
	if len(objs) != 2 || next != 4 {
		t.Fatalf("Snapshot = %d objects, next %d", len(objs), next)
	}
	if objs[0].OID != e || objs[1].OID != c {
		t.Fatalf("Snapshot not in OID order: %+v", objs)
	}
	// Snapshot attrs are copies.
	objs[0].Attrs["Age"] = 99
	if got, _ := st.Get(e); func() any { v, _ := got.Attr("Age"); return v }().(int) != 45 {
		t.Fatal("Snapshot aliases store state")
	}
	objs[0].Attrs["Age"] = 45

	st2 := New(testSchema(t))
	if err := st2.Restore(objs, next); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if st2.Len() != 2 {
		t.Fatalf("restored Len = %d", st2.Len())
	}
	// Reverse refs rebuilt.
	if got := st2.Referencing("President", e); len(got) != 1 || got[0] != c {
		t.Fatalf("restored Referencing = %v", got)
	}
	// OID allocation continues past the snapshot.
	n, err := st2.Insert("Employee", Attrs{"Age": 30})
	if err != nil || n != 4 {
		t.Fatalf("post-restore Insert = %d, %v", n, err)
	}
	if st2.Schema() == nil {
		t.Fatal("Schema accessor broken")
	}
}

func TestRestoreValidation(t *testing.T) {
	st := New(testSchema(t))
	cases := []struct {
		name string
		objs []RestoredObject
		next OID
	}{
		{"unknown class", []RestoredObject{{OID: 1, Class: "Ghost"}}, 2},
		{"oid zero", []RestoredObject{{OID: 0, Class: "Employee"}}, 2},
		{"oid out of range", []RestoredObject{{OID: 5, Class: "Employee"}}, 2},
		{"duplicate oid", []RestoredObject{
			{OID: 1, Class: "Employee"}, {OID: 1, Class: "Employee"}}, 3},
		{"dangling reference", []RestoredObject{
			{OID: 1, Class: "Company", Attrs: Attrs{"President": OID(9)}}}, 10},
		{"wrong-class reference", []RestoredObject{
			{OID: 1, Class: "Employee", Attrs: Attrs{"Age": 4}},
			{OID: 2, Class: "Vehicle", Attrs: Attrs{"ManufacturedBy": OID(1)}}}, 3},
	}
	for _, tc := range cases {
		if err := st.Restore(tc.objs, tc.next); err == nil {
			t.Errorf("Restore(%s) succeeded, want error", tc.name)
		}
	}
	// A failed restore leaves the store usable.
	if _, err := st.Insert("Employee", Attrs{"Age": 40}); err != nil {
		t.Fatalf("store unusable after failed restore: %v", err)
	}
}

// TestRestoreForwardReferences: topologies only reachable via SetAttr
// (references "forward" in OID order) restore fine.
func TestRestoreForwardReferences(t *testing.T) {
	st := New(testSchema(t))
	err := st.Restore([]RestoredObject{
		{OID: 1, Class: "Company", Attrs: Attrs{"President": OID(2)}},
		{OID: 2, Class: "Employee", Attrs: Attrs{"Age": 50}},
	}, 3)
	if err != nil {
		t.Fatalf("forward-reference restore: %v", err)
	}
	if got, ok := st.Deref(1, "President"); !ok || got != 2 {
		t.Fatalf("Deref after restore = %v, %v", got, ok)
	}
}
