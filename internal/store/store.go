// Package store implements the in-memory object base underneath the index
// structures: OID allocation, typed objects validated against a schema,
// per-class extents, and a reverse-reference index used by path-index
// maintenance (when a mid-path object changes, the U-index must find every
// referencing object; Section 3.5 of the paper).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/encoding"
	"repro/internal/schema"
)

// ErrUnknownClass is returned (wrapped) when an operation names a class the
// schema does not declare; test with errors.Is.
var ErrUnknownClass = errors.New("store: unknown class")

// OID aliases the four-byte object identifier used in index keys.
type OID = encoding.OID

// Attrs is the attribute assignment of one object. Scalar attributes hold
// uint64/int64/float64/string (int accepted for the integer types);
// reference attributes hold an OID, or []OID when declared Multi.
type Attrs map[string]any

// Object is one stored object instance.
type Object struct {
	OID   OID
	Class string
	attrs Attrs
}

// Attr returns the value of an attribute (nil, false when unset).
func (o *Object) Attr(name string) (any, bool) {
	v, ok := o.attrs[name]
	return v, ok
}

// Attrs returns a copy of the object's attribute assignment.
func (o *Object) Attrs() Attrs {
	out := make(Attrs, len(o.attrs))
	for k, v := range o.attrs {
		out[k] = v
	}
	return out
}

// refKey identifies a reverse-reference bucket: all objects whose attribute
// Attr references Target.
type refKey struct {
	Attr   string
	Target OID
}

// Store is an in-memory object base. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	schema  *schema.Schema
	objects map[OID]*Object
	extents map[string][]OID // per exact class, insertion order
	reverse map[refKey][]OID // referencing objects, insertion order
	nextOID OID
}

// New returns an empty store over the given schema.
func New(s *schema.Schema) *Store {
	return &Store{
		schema:  s,
		objects: make(map[OID]*Object),
		extents: make(map[string][]OID),
		reverse: make(map[refKey][]OID),
		nextOID: 1,
	}
}

// Schema returns the schema the store validates against.
func (st *Store) Schema() *schema.Schema { return st.schema }

// Len returns the number of live objects.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.objects)
}

// Insert creates an object of the given (exact) class and returns its OID.
func (st *Store) Insert(class string, attrs Attrs) (OID, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.schema.Class(class); !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownClass, class)
	}
	for name, v := range attrs {
		if err := st.checkValue(class, name, v); err != nil {
			return 0, err
		}
	}
	oid := st.nextOID
	st.nextOID++
	o := &Object{OID: oid, Class: class, attrs: make(Attrs, len(attrs))}
	for k, v := range attrs {
		o.attrs[k] = v
		st.linkRefs(oid, k, v)
	}
	st.objects[oid] = o
	st.extents[class] = append(st.extents[class], oid)
	return oid, nil
}

// checkValue validates one attribute value against the schema. Reference
// targets must exist and be instances of the declared class or a subclass.
func (st *Store) checkValue(class, name string, v any) error {
	a, ok := st.schema.AttrOf(class, name)
	if !ok {
		return fmt.Errorf("store: class %q has no attribute %q", class, name)
	}
	if !a.IsRef() {
		if _, err := a.Type.EncodeValue(v); err != nil {
			return fmt.Errorf("store: %s.%s: %w", class, name, err)
		}
		return nil
	}
	check := func(target OID) error {
		to, ok := st.objects[target]
		if !ok {
			return fmt.Errorf("store: %s.%s references missing object %d", class, name, target)
		}
		if !st.schema.IsSubclassOf(to.Class, a.Ref) {
			return fmt.Errorf("store: %s.%s must reference %s, object %d is %s", class, name, a.Ref, target, to.Class)
		}
		return nil
	}
	switch x := v.(type) {
	case OID:
		if a.Multi {
			return fmt.Errorf("store: %s.%s is multi-valued; assign []OID", class, name)
		}
		return check(x)
	case []OID:
		if !a.Multi {
			return fmt.Errorf("store: %s.%s is single-valued; assign OID", class, name)
		}
		for _, t := range x {
			if err := check(t); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("store: %s.%s: reference value must be OID or []OID, got %T", class, name, v)
}

func (st *Store) linkRefs(src OID, attr string, v any) {
	switch x := v.(type) {
	case OID:
		k := refKey{attr, x}
		st.reverse[k] = append(st.reverse[k], src)
	case []OID:
		for _, t := range x {
			k := refKey{attr, t}
			st.reverse[k] = append(st.reverse[k], src)
		}
	}
}

func (st *Store) unlinkRefs(src OID, attr string, v any) {
	drop := func(target OID) {
		k := refKey{attr, target}
		list := st.reverse[k]
		for i, o := range list {
			if o == src {
				st.reverse[k] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(st.reverse[k]) == 0 {
			delete(st.reverse, k)
		}
	}
	switch x := v.(type) {
	case OID:
		drop(x)
	case []OID:
		for _, t := range x {
			drop(t)
		}
	}
}

// Get returns the object with the given OID.
func (st *Store) Get(oid OID) (*Object, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	o, ok := st.objects[oid]
	return o, ok
}

// SetAttr updates one attribute of an object, maintaining the reverse
// reference index. It returns the previous value (nil if unset).
func (st *Store) SetAttr(oid OID, name string, v any) (any, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	o, ok := st.objects[oid]
	if !ok {
		return nil, fmt.Errorf("store: no object %d", oid)
	}
	if err := st.checkValue(o.Class, name, v); err != nil {
		return nil, err
	}
	old := o.attrs[name]
	st.unlinkRefs(oid, name, old)
	o.attrs[name] = v
	st.linkRefs(oid, name, v)
	return old, nil
}

// Delete removes an object. Objects still referencing it keep their
// (now dangling) OIDs; the paper's update discussion assumes the
// application removes or retargets referers first, and the index layer
// handles its own entries.
func (st *Store) Delete(oid OID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	o, ok := st.objects[oid]
	if !ok {
		return fmt.Errorf("store: no object %d", oid)
	}
	st.dropLocked(oid, o)
	return nil
}

// ReplayInsert re-applies a logged insert during recovery: the OID is fixed
// (taken from the log record, not allocated), an existing object under that
// OID is replaced, and reference targets are not validated — a later record
// in the log may delete the target, so mid-replay states can dangle in ways
// a live Insert never would. nextOID advances past the replayed OID so
// post-recovery inserts never reuse it.
func (st *Store) ReplayInsert(oid OID, class string, attrs Attrs) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if oid == 0 {
		return fmt.Errorf("store: replay insert with zero OID")
	}
	if _, ok := st.schema.Class(class); !ok {
		return fmt.Errorf("%w %q", ErrUnknownClass, class)
	}
	if old, ok := st.objects[oid]; ok {
		st.dropLocked(oid, old)
	}
	o := &Object{OID: oid, Class: class, attrs: make(Attrs, len(attrs))}
	for k, v := range attrs {
		o.attrs[k] = v
		st.linkRefs(oid, k, v)
	}
	st.objects[oid] = o
	st.extents[class] = append(st.extents[class], oid)
	if oid >= st.nextOID {
		st.nextOID = oid + 1
	}
	return nil
}

// ReplaySet re-applies a logged attribute update during recovery. A missing
// object is a no-op (its delete was also logged and replays later), and the
// value is installed without reference-target validation.
func (st *Store) ReplaySet(oid OID, name string, v any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	o, ok := st.objects[oid]
	if !ok {
		return
	}
	st.unlinkRefs(oid, name, o.attrs[name])
	o.attrs[name] = v
	st.linkRefs(oid, name, v)
}

// ReplayDelete re-applies a logged delete during recovery; deleting an
// already-absent object is a no-op, which keeps replay idempotent.
func (st *Store) ReplayDelete(oid OID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if o, ok := st.objects[oid]; ok {
		st.dropLocked(oid, o)
	}
}

// dropLocked removes an object, its reverse-reference links, and its extent
// entry. Caller holds st.mu.
func (st *Store) dropLocked(oid OID, o *Object) {
	for name, v := range o.attrs {
		st.unlinkRefs(oid, name, v)
	}
	delete(st.objects, oid)
	ext := st.extents[o.Class]
	for i, e := range ext {
		if e == oid {
			st.extents[o.Class] = append(ext[:i], ext[i+1:]...)
			break
		}
	}
}

// Extent returns the OIDs of the exact class (no subclasses), in insertion
// order.
func (st *Store) Extent(class string) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]OID(nil), st.extents[class]...)
}

// HierarchyExtent returns the OIDs of the class and all its subclasses,
// sorted by OID.
func (st *Store) HierarchyExtent(class string) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []OID
	for _, c := range st.schema.Subtree(class) {
		out = append(out, st.extents[c]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Referencing returns the objects whose attribute attr references target
// (the reverse REF traversal the path-index update algorithm needs).
func (st *Store) Referencing(attr string, target OID) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]OID(nil), st.reverse[refKey{attr, target}]...)
}

// Deref follows a single-valued reference attribute of an object.
func (st *Store) Deref(oid OID, attr string) (OID, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	o, ok := st.objects[oid]
	if !ok {
		return 0, false
	}
	v, ok := o.attrs[attr]
	if !ok {
		return 0, false
	}
	t, ok := v.(OID)
	return t, ok
}

// DerefMulti follows a reference attribute of an object, returning one or
// many targets uniformly.
func (st *Store) DerefMulti(oid OID, attr string) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	o, ok := st.objects[oid]
	if !ok {
		return nil
	}
	switch x := o.attrs[attr].(type) {
	case OID:
		return []OID{x}
	case []OID:
		return append([]OID(nil), x...)
	}
	return nil
}

// Select scans the hierarchy extent of class and returns the OIDs whose
// attribute satisfies pred — the paper's fallback for unindexed predicates
// ("The companies' object-ids must be first restricted by a select
// operation", Section 3.3).
func (st *Store) Select(class, attr string, pred func(any) bool) []OID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []OID
	for _, c := range st.schema.Subtree(class) {
		for _, oid := range st.extents[c] {
			if v, ok := st.objects[oid].attrs[attr]; ok && pred(v) {
				out = append(out, oid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoredObject is one object of a snapshot being loaded.
type RestoredObject struct {
	OID   OID
	Class string
	Attrs Attrs
}

// Restore replaces the store contents wholesale from a snapshot (the
// persistence path). Objects are installed first and validated second, so
// reference topologies that were built up with SetAttr (including cycles)
// reload correctly regardless of OID order.
func (st *Store) Restore(objs []RestoredObject, nextOID OID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	objects := make(map[OID]*Object, len(objs))
	extents := make(map[string][]OID)
	for _, ro := range objs {
		if _, ok := st.schema.Class(ro.Class); !ok {
			return fmt.Errorf("store: restore: %w %q", ErrUnknownClass, ro.Class)
		}
		if ro.OID == 0 || ro.OID >= nextOID {
			return fmt.Errorf("store: restore: oid %d out of range", ro.OID)
		}
		if _, dup := objects[ro.OID]; dup {
			return fmt.Errorf("store: restore: duplicate oid %d", ro.OID)
		}
		attrs := make(Attrs, len(ro.Attrs))
		for k, v := range ro.Attrs {
			attrs[k] = v
		}
		objects[ro.OID] = &Object{OID: ro.OID, Class: ro.Class, attrs: attrs}
		extents[ro.Class] = append(extents[ro.Class], ro.OID)
	}
	// Validate with the full object set in place.
	prevObjects := st.objects
	st.objects = objects
	reverse := make(map[refKey][]OID)
	for _, ro := range objs {
		o := objects[ro.OID]
		for name, v := range o.attrs {
			if err := st.checkValue(o.Class, name, v); err != nil {
				st.objects = prevObjects
				return fmt.Errorf("store: restore: object %d: %w", ro.OID, err)
			}
		}
	}
	for _, ro := range objs {
		o := objects[ro.OID]
		for name, v := range o.attrs {
			switch x := v.(type) {
			case OID:
				k := refKey{name, x}
				reverse[k] = append(reverse[k], o.OID)
			case []OID:
				for _, t := range x {
					k := refKey{name, t}
					reverse[k] = append(reverse[k], o.OID)
				}
			}
		}
	}
	st.extents = extents
	st.reverse = reverse
	st.nextOID = nextOID
	return nil
}

// Snapshot returns every object in OID order, plus the next OID to assign —
// the persistence counterpart of Restore.
func (st *Store) Snapshot() ([]RestoredObject, OID) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	oids := make([]OID, 0, len(st.objects))
	for oid := range st.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	out := make([]RestoredObject, 0, len(oids))
	for _, oid := range oids {
		o := st.objects[oid]
		attrs := make(Attrs, len(o.attrs))
		for k, v := range o.attrs {
			attrs[k] = v
		}
		out = append(out, RestoredObject{OID: oid, Class: o.Class, Attrs: attrs})
	}
	return out, st.nextOID
}
