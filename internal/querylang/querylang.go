// Package querylang parses the paper's textual query notation (Section
// 3.3/3.4) into core.Query values. The grammar, with the paper's examples:
//
//	query     := '(' valuepred ( ',' position )* ')' ( ';' 'distinct' INT )?
//	valuepred := ATTR '=' values | ATTR '=' '[' value '-' value ']'   range
//	           | ATTR '=' '*'                                        any value
//	values    := value | '{' value ( ',' value )* '}'
//	position  := classref | '[' classref ( ',' classref )* ']' | '?'
//	classref  := CLASS ( '*' )? ( '$' oids | pred )?
//	pred      := '{' ATTR '=' value '}'        select restriction (paper q3)
//	oids      := '?' | INT | '{' INT ( ',' INT )* '}'
//
// CLASS is either a class name ("Automobile") or a compact class code from
// the paper ("C5A", with '*' for the subtree as in "C5A*"). Positions are
// terminal-first, exactly as the paper writes them:
//
//	(Color=Red, C5B, ?)                 red trucks (class only)
//	(Color=[Blue-Red], C5B*)            range over the Truck subtree
//	(Color=Red, [C5A*, C5B])            paper query 5
//	(Age=50, C1, C2$12, C5*) ; distinct 2
//
// An open range end may be written as '[' value '-' ']' or '[' '-' value ']'.
package querylang

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/store"
)

// Run parses input and executes it on the index under the given execution
// context (nil selects a fresh Parallel-algorithm context). ctx cancellation
// aborts the scan at the next page visit. This is the textual-query entry
// point of the executor layer: every run gets its own per-query ExecContext
// unless the caller passes one to share page accounting, so concurrent
// textual queries are as independent as programmatic ones.
func Run(ctx context.Context, ix *core.Index, input string, ec *core.ExecContext) ([]core.Match, core.Stats, error) {
	q, err := Parse(ix, input)
	if err != nil {
		return nil, core.Stats{}, err
	}
	if ec == nil {
		ec = core.NewExecContext(core.Parallel)
	}
	var out []core.Match
	stats, err := ix.ExecuteCtx(ctx, q, ec, func(m core.Match) bool {
		out = append(out, m)
		return true
	})
	return out, stats, err
}

// Parse compiles a textual query against the given index.
func Parse(ix *core.Index, input string) (core.Query, error) {
	p := &parser{ix: ix, in: input}
	q, err := p.parse()
	if err != nil {
		return core.Query{}, fmt.Errorf("querylang: %w (in %q)", err, input)
	}
	return q, nil
}

type parser struct {
	ix  *core.Index
	in  string
	pos int
}

func (p *parser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.ws()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) eat(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(c byte) error {
	if !p.eat(c) {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	return nil
}

// token reads an identifier/number/quoted-string token.
func (p *parser) token() (string, error) {
	p.ws()
	if p.pos < len(p.in) && p.in[p.pos] == '"' {
		end := strings.IndexByte(p.in[p.pos+1:], '"')
		if end < 0 {
			return "", fmt.Errorf("unterminated string at offset %d", p.pos)
		}
		s := p.in[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return s, nil
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ',' || c == ')' || c == '(' || c == '[' || c == ']' || c == '{' ||
			c == '}' || c == '$' || c == '*' || c == ';' || c == ' ' || c == '\t' ||
			c == '=' || c == '-' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a token at offset %d", p.pos)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parse() (core.Query, error) {
	var q core.Query
	if err := p.expect('('); err != nil {
		return q, err
	}
	vp, err := p.valuePred()
	if err != nil {
		return q, err
	}
	q.Value = vp
	for p.eat(',') {
		pos, err := p.position()
		if err != nil {
			return q, err
		}
		q.Positions = append(q.Positions, pos)
	}
	if err := p.expect(')'); err != nil {
		return q, err
	}
	if p.eat(';') {
		kw, err := p.token()
		if err != nil {
			return q, err
		}
		if kw != "distinct" {
			return q, fmt.Errorf("expected 'distinct', got %q", kw)
		}
		n, err := p.token()
		if err != nil {
			return q, err
		}
		d, err := strconv.Atoi(n)
		if err != nil {
			return q, fmt.Errorf("bad distinct count %q", n)
		}
		q.Distinct = d
	}
	if p.peek() != 0 {
		return q, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return q, nil
}

// value converts a token to the index's attribute type.
func (p *parser) value(tok string) (any, error) {
	switch p.ix.AttrType() {
	case encoding.AttrUint64:
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad uint64 value %q", tok)
		}
		return v, nil
	case encoding.AttrInt64:
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int64 value %q", tok)
		}
		return v, nil
	case encoding.AttrFloat64:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float value %q", tok)
		}
		return v, nil
	default:
		return tok, nil
	}
}

func (p *parser) valuePred() (core.ValuePred, error) {
	var vp core.ValuePred
	attr, err := p.token()
	if err != nil {
		return vp, err
	}
	if attr != p.ix.Spec().Attr {
		return vp, fmt.Errorf("index %q is on attribute %q, not %q", p.ix.Spec().Name, p.ix.Spec().Attr, attr)
	}
	if err := p.expect('='); err != nil {
		return vp, err
	}
	switch {
	case p.eat('*'):
		return core.ValuePred{}, nil // any value
	case p.eat('['):
		// Range [lo-hi], either end may be empty.
		if !p.eat('-') {
			tok, err := p.token()
			if err != nil {
				return vp, err
			}
			if vp.Lo, err = p.value(tok); err != nil {
				return vp, err
			}
			if err := p.expect('-'); err != nil {
				return vp, err
			}
		}
		if p.peek() != ']' {
			tok, err := p.token()
			if err != nil {
				return vp, err
			}
			if vp.Hi, err = p.value(tok); err != nil {
				return vp, err
			}
		}
		return vp, p.expect(']')
	case p.eat('{'):
		for {
			tok, err := p.token()
			if err != nil {
				return vp, err
			}
			v, err := p.value(tok)
			if err != nil {
				return vp, err
			}
			vp.Values = append(vp.Values, v)
			if !p.eat(',') {
				break
			}
		}
		return vp, p.expect('}')
	default:
		tok, err := p.token()
		if err != nil {
			return vp, err
		}
		v, err := p.value(tok)
		if err != nil {
			return vp, err
		}
		vp.Values = []any{v}
		return vp, nil
	}
}

func (p *parser) position() (core.Position, error) {
	if p.eat('?') {
		return core.Any, nil
	}
	if p.eat('[') {
		var pos core.Position
		for {
			cp, err := p.classRef()
			if err != nil {
				return pos, err
			}
			pos.Alts = append(pos.Alts, cp)
			if !p.eat(',') {
				break
			}
		}
		return pos, p.expect(']')
	}
	cp, err := p.classRef()
	if err != nil {
		return core.Position{}, err
	}
	return core.Position{Alts: []core.ClassPattern{cp}}, nil
}

func (p *parser) classRef() (core.ClassPattern, error) {
	var cp core.ClassPattern
	tok, err := p.token()
	if err != nil {
		return cp, err
	}
	class, err := p.resolveClass(tok)
	if err != nil {
		return cp, err
	}
	cp.Class = class
	cp.Subtree = p.eat('*')
	if p.peek() == '{' {
		return p.predicate(cp)
	}
	if p.eat('$') {
		if p.eat('?') {
			return cp, nil // any object, explicit
		}
		if p.eat('{') {
			for {
				n, err := p.token()
				if err != nil {
					return cp, err
				}
				oid, err := strconv.ParseUint(n, 10, 32)
				if err != nil {
					return cp, fmt.Errorf("bad oid %q", n)
				}
				cp.OIDs = append(cp.OIDs, store.OID(oid))
				if !p.eat(',') {
					break
				}
			}
			return cp, p.expect('}')
		}
		n, err := p.token()
		if err != nil {
			return cp, err
		}
		oid, err := strconv.ParseUint(n, 10, 32)
		if err != nil {
			return cp, fmt.Errorf("bad oid %q", n)
		}
		cp.OIDs = []store.OID{store.OID(oid)}
	}
	return cp, nil
}

// predicate parses "{Attr=value}" after a class reference and resolves it
// with a store select over the class hierarchy — the paper's Valᵢ form
// "4) a predicate" and its Section-3.3 query 3 ("The companies' object-ids
// must be first restricted by a select operation").
func (p *parser) predicate(cp core.ClassPattern) (core.ClassPattern, error) {
	if err := p.expect('{'); err != nil {
		return cp, err
	}
	attr, err := p.token()
	if err != nil {
		return cp, err
	}
	if err := p.expect('='); err != nil {
		return cp, err
	}
	tok, err := p.token()
	if err != nil {
		return cp, err
	}
	if err := p.expect('}'); err != nil {
		return cp, err
	}
	a, ok := p.ix.Store().Schema().AttrOf(cp.Class, attr)
	if !ok || a.IsRef() {
		return cp, fmt.Errorf("%q is not a scalar attribute of %q", attr, cp.Class)
	}
	want, err := coerce(a.Type, tok)
	if err != nil {
		return cp, err
	}
	oids := p.ix.Store().Select(cp.Class, attr, func(v any) bool {
		return scalarEqual(v, want)
	})
	cp.Subtree = true
	if len(oids) == 0 {
		cp.OIDs = []store.OID{0} // matches nothing; OIDs start at 1
	} else {
		cp.OIDs = oids
	}
	return cp, nil
}

// coerce converts a token to the attribute's value domain.
func coerce(t encoding.AttrType, tok string) (any, error) {
	switch t {
	case encoding.AttrUint64:
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad uint64 predicate value %q", tok)
		}
		return v, nil
	case encoding.AttrInt64:
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int64 predicate value %q", tok)
		}
		return v, nil
	case encoding.AttrFloat64:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float predicate value %q", tok)
		}
		return v, nil
	default:
		return tok, nil
	}
}

// scalarEqual compares a stored attribute value with a coerced predicate
// value, tolerating the int/uint64/int64 convenience forms the store
// accepts.
func scalarEqual(stored, want any) bool {
	switch w := want.(type) {
	case uint64:
		switch s := stored.(type) {
		case uint64:
			return s == w
		case int:
			return s >= 0 && uint64(s) == w
		case int64:
			return s >= 0 && uint64(s) == w
		}
		return false
	case int64:
		switch s := stored.(type) {
		case int64:
			return s == w
		case int:
			return int64(s) == w
		}
		return false
	}
	return stored == want
}

// resolveClass accepts a class name or a compact class code ("C5A").
func (p *parser) resolveClass(tok string) (string, error) {
	sch := p.ix.Coding()
	// Try as a class name first: index path classes and their subtrees
	// are the only classes a query may mention; names win over codes.
	for _, row := range sch.Table() {
		if row.Class == tok {
			return tok, nil
		}
	}
	for _, row := range sch.Table() {
		if row.Code.Compact() == tok || string(row.Code) == tok {
			return row.Class, nil
		}
	}
	return "", fmt.Errorf("unknown class or code %q", tok)
}
