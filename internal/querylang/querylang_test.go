package querylang

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/schema"
	"repro/internal/store"
)

// fixtures: the paper's Example 1 database with color and age indexes.
type fixture struct {
	st       *store.Store
	color    *core.Index
	age      *core.Index
	e1       store.OID
	c2       store.OID
	vehicles map[string]store.OID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", schema.Attr{Name: "Age", Type: encoding.AttrUint64}))
	must(s.AddClass("Company", "",
		schema.Attr{Name: "Name", Type: encoding.AttrString},
		schema.Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("Vehicle", "",
		schema.Attr{Name: "Color", Type: encoding.AttrString},
		schema.Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))
	if _, err := s.AssignCodes(); err != nil {
		t.Fatal(err)
	}
	st := store.New(s)
	f := &fixture{st: st, vehicles: map[string]store.OID{}}
	ins := func(class string, attrs store.Attrs) store.OID {
		t.Helper()
		oid, err := st.Insert(class, attrs)
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	f.e1 = ins("Employee", store.Attrs{"Age": 50})
	f.c2 = ins("Company", store.Attrs{"Name": "Fiat", "President": f.e1})
	for _, v := range []struct {
		name, class, color string
	}{
		{"tipo", "Automobile", "White"},
		{"panda", "Automobile", "Red"},
		{"r5", "CompactAutomobile", "Red"},
		{"fh16", "Truck", "Blue"},
		{"legacy", "Vehicle", "Red"},
	} {
		f.vehicles[v.name] = ins(v.class, store.Attrs{"Color": v.color, "ManufacturedBy": f.c2})
	}
	var err error
	f.color, err = core.New(pager.NewMemFile(0), st, core.Spec{Name: "color", Root: "Vehicle", Attr: "Color"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.color.Build(); err != nil {
		t.Fatal(err)
	}
	f.age, err = core.New(pager.NewMemFile(0), st, core.Spec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.age.Build(); err != nil {
		t.Fatal(err)
	}
	return f
}

func runColor(t *testing.T, f *fixture, q string) []core.Match {
	t.Helper()
	parsed, err := Parse(f.color, q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	ms, _, err := f.color.Execute(parsed, core.Parallel, nil)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return ms
}

func TestExactByName(t *testing.T) {
	f := newFixture(t)
	ms := runColor(t, f, `(Color=Red, Automobile*)`)
	if len(ms) != 2 { // panda, r5
		t.Fatalf("matches = %d", len(ms))
	}
}

func TestExactByCompactCode(t *testing.T) {
	f := newFixture(t)
	autoCode := f.color.Coding().MustCode("Automobile").Compact()
	byName := runColor(t, f, `(Color=Red, Automobile*)`)
	byCode := runColor(t, f, `(Color=Red, `+autoCode+`*)`)
	if len(byName) != len(byCode) {
		t.Fatalf("name/code divergence: %d vs %d", len(byName), len(byCode))
	}
	// Exact class (no star).
	exact := runColor(t, f, `(Color=Red, `+autoCode+`)`)
	if len(exact) != 1 { // panda only
		t.Fatalf("exact class matches = %d", len(exact))
	}
}

func TestUnionPosition(t *testing.T) {
	f := newFixture(t)
	autoCode := f.color.Coding().MustCode("Automobile").Compact()
	ms := runColor(t, f, `(Color={Red,Blue}, [`+autoCode+`*, Truck])`)
	if len(ms) != 3 { // panda, r5 (red autos), fh16 (blue truck)
		t.Fatalf("matches = %d: %v", len(ms), ms)
	}
}

func TestRanges(t *testing.T) {
	f := newFixture(t)
	// Blue..Red covers Blue and Red but not White.
	ms := runColor(t, f, `(Color=[Blue-Red])`)
	if len(ms) != 4 {
		t.Fatalf("range matches = %d", len(ms))
	}
	// Open ends.
	ms = runColor(t, f, `(Color=[Red-])`)
	if len(ms) != 4 { // 3 red + 1 white
		t.Fatalf("open range matches = %d", len(ms))
	}
	ms = runColor(t, f, `(Color=[-Blue])`)
	if len(ms) != 1 {
		t.Fatalf("open-low range matches = %d", len(ms))
	}
	ms = runColor(t, f, `(Color=*)`)
	if len(ms) != 5 {
		t.Fatalf("wildcard value matches = %d", len(ms))
	}
}

func TestPathQueryWithOIDsAndDistinct(t *testing.T) {
	f := newFixture(t)
	q := `(Age=50, Employee, Company$` + itoa(f.c2) + `, Vehicle*)`
	parsed, err := Parse(f.age, q)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := f.age.Execute(parsed, core.Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("path matches = %d", len(ms))
	}
	// Distinct companies.
	q = `(Age=50, ?, ?) ; distinct 2`
	parsed, err = Parse(f.age, q)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Distinct != 2 {
		t.Fatalf("Distinct = %d", parsed.Distinct)
	}
	ms, _, err = f.age.Execute(parsed, core.Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Path[1].OID != f.c2 {
		t.Fatalf("distinct companies = %v", ms)
	}
	// OID sets.
	q = `(Age=50, ?, Company${` + itoa(f.c2) + `,999}, ?)`
	parsed, err = Parse(f.age, q)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err = f.age.Execute(parsed, core.Parallel, nil)
	if err != nil || len(ms) != 5 {
		t.Fatalf("oid-set matches = %d, %v", len(ms), err)
	}
}

func itoa(o store.OID) string {
	return fmtInt(uint64(o))
}

func fmtInt(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestQuotedStrings(t *testing.T) {
	f := newFixture(t)
	vehCode := f.color.Coding().MustCode("Vehicle").Compact()
	ms := runColor(t, f, `(Color="Red", `+vehCode+`*)`)
	if len(ms) != 3 {
		t.Fatalf("quoted value matches = %d", len(ms))
	}
}

func TestParseErrors(t *testing.T) {
	f := newFixture(t)
	bad := []string{
		``,
		`Color=Red`,                         // no parens
		`(Hue=Red)`,                         // wrong attribute
		`(Color=Red`,                        // unterminated
		`(Color=Red, Ghost*)`,               // unknown class
		`(Color=[Red)`,                      // bad range
		`(Color=Red) ; distinct x`,          // bad distinct
		`(Color=Red) ; foo 2`,               // bad keyword
		`(Color=Red) trailing`,              // trailing input
		`(Color=Red, Automobile$x)`,         // bad oid
		`(Color="unterminated)`,             // unterminated string
		`(Color={Red,})`,                    // dangling comma
		`(Color=Red, [Automobile*, Ghost])`, // unknown class in union
		`(Color=Red, Automobile${1,bad})`,   // bad oid in set
	}
	for _, q := range bad {
		if _, err := Parse(f.color, q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestUintValues(t *testing.T) {
	f := newFixture(t)
	parsed, err := Parse(f.age, `(Age={50,60})`)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Value.Values) != 2 || parsed.Value.Values[0].(uint64) != 50 {
		t.Fatalf("values = %v", parsed.Value.Values)
	}
	if _, err := Parse(f.age, `(Age=old)`); err == nil {
		t.Error("non-numeric age accepted")
	}
}

// TestPositionPredicate covers the paper's query-3 form: a position
// restricted by a select predicate on the class's own attribute.
func TestPositionPredicate(t *testing.T) {
	f := newFixture(t)
	// Vehicles with president age 50, restricted to the company named Fiat.
	parsed, err := Parse(f.age, `(Age=50, ?, Company{Name=Fiat}, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := f.age.Execute(parsed, core.Parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("predicate matches = %d", len(ms))
	}
	for _, m := range ms {
		if m.Path[1].OID != f.c2 {
			t.Fatalf("path = %+v", m.Path)
		}
	}
	// A predicate that matches no object yields no results (not an error).
	parsed, err = Parse(f.age, `(Age=50, ?, Company{Name=Ghost}, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err = f.age.Execute(parsed, core.Parallel, nil)
	if err != nil || len(ms) != 0 {
		t.Fatalf("empty predicate: %d matches, %v", len(ms), err)
	}
	// Numeric predicate on the terminal class.
	parsed, err = Parse(f.age, `(Age=[-100], Employee{Age=50}, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err = f.age.Execute(parsed, core.Parallel, nil)
	if err != nil || len(ms) != 5 {
		t.Fatalf("numeric predicate: %d matches, %v", len(ms), err)
	}
	// Errors.
	for _, bad := range []string{
		`(Age=50, ?, Company{Ghost=1}, ?)`,     // unknown attribute
		`(Age=50, ?, Company{President=1}, ?)`, // ref attribute
		`(Age=50, ?, Company{Name=Fiat, ?)`,    // unterminated
		`(Age=50, Employee{Age=old}, ?, ?)`,    // bad value
	} {
		if _, err := Parse(f.age, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestWhereHelper exercises the programmatic predicate position.
func TestWhereHelper(t *testing.T) {
	f := newFixture(t)
	pos := f.age.Where("Company", "Name", func(v any) bool { return v == "Fiat" })
	ms, _, err := f.age.Execute(core.Query{
		Value:     core.Exact(50),
		Positions: []core.Position{core.Any, pos},
	}, core.Parallel, nil)
	if err != nil || len(ms) != 5 {
		t.Fatalf("Where: %d matches, %v", len(ms), err)
	}
	empty := f.age.Where("Company", "Name", func(v any) bool { return false })
	ms, _, err = f.age.Execute(core.Query{
		Value:     core.Exact(50),
		Positions: []core.Position{core.Any, empty},
	}, core.Parallel, nil)
	if err != nil || len(ms) != 0 {
		t.Fatalf("empty Where: %d matches, %v", len(ms), err)
	}
}
