package chtree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
)

func key8(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

func buildTree(t *testing.T, nObjects, nSets, nKeys int, seed int64) *Tree {
	t.Helper()
	tr, err := New(pager.NewMemFile(1024), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, nObjects)
	for i := range entries {
		entries[i] = Entry{
			Key: key8(uint64(rng.Intn(nKeys))),
			Set: SetID(rng.Intn(nSets)),
			OID: encoding.OID(i + 1),
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if c := string(a.Key); c != string(b.Key) {
			return c < string(b.Key)
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		return a.OID < b.OID
	})
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertExactDelete(t *testing.T) {
	tr, err := New(pager.NewMemFile(1024), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := tr.Insert(SetID(i%3), key8(uint64(i%5)), encoding.OID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 { // five distinct keys
		t.Fatalf("Len = %d, want 5 distinct keys", tr.Len())
	}
	res, stats, err := tr.ExactMatch(key8(2), []SetID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// i%5==2 and i%3==0: i in {12, 27, 42, 57} -> 4 objects.
	if len(res) != 4 {
		t.Fatalf("ExactMatch returned %d: %v", len(res), res)
	}
	if stats.PagesRead == 0 || stats.Matches != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	// Duplicate insert is a no-op.
	if err := tr.Insert(0, key8(2), res[0].OID); err != nil {
		t.Fatal(err)
	}
	res2, _, _ := tr.ExactMatch(key8(2), []SetID{0}, nil)
	if len(res2) != 4 {
		t.Fatalf("duplicate insert changed directory: %d", len(res2))
	}
	// Delete one.
	ok, err := tr.Delete(0, key8(2), res[0].OID)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := tr.Delete(0, key8(2), res[0].OID); ok {
		t.Fatal("double delete reported true")
	}
	res3, _, _ := tr.ExactMatch(key8(2), []SetID{0}, nil)
	if len(res3) != 3 {
		t.Fatalf("after delete: %d", len(res3))
	}
	// Deleting the last member of the last set removes the record.
	for _, r := range res3 {
		if _, err := tr.Delete(0, key8(2), r.OID); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []SetID{1, 2} {
		rs, _, _ := tr.ExactMatch(key8(2), []SetID{s}, nil)
		for _, r := range rs {
			if _, err := tr.Delete(s, key8(2), r.OID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len after clearing key 2 = %d, want 4", tr.Len())
	}
}

func TestMissingKey(t *testing.T) {
	tr := buildTree(t, 100, 4, 10, 1)
	res, _, err := tr.ExactMatch(key8(999), []SetID{0, 1, 2, 3}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("missing key = %v, %v", res, err)
	}
	if ok, _ := tr.Delete(0, key8(999), 1); ok {
		t.Fatal("Delete of missing key reported true")
	}
}

func TestRangeQuery(t *testing.T) {
	tr := buildTree(t, 4000, 8, 100, 2)
	res, _, err := tr.RangeQuery(key8(10), key8(19), []SetID{2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 60 || len(res) > 140 {
		t.Fatalf("range returned %d", len(res))
	}
	for _, r := range res {
		if r.Set != 2 && r.Set != 5 {
			t.Fatalf("unqueried set in results: %+v", r)
		}
	}
}

// TestKeyGroupingShape verifies the CH-tree's defining behaviours:
//  1. exact match is one descent plus the record — flat in #sets queried;
//  2. a range query costs the same whether 1 or all sets are queried (it
//     reads every record in range wholesale — the paper's key-grouping
//     weakness).
func TestKeyGroupingShape(t *testing.T) {
	tr := buildTree(t, 30000, 40, 1000, 3)
	all := make([]SetID, 40)
	for i := range all {
		all[i] = SetID(i)
	}

	e1 := pager.NewTracker()
	if _, _, err := tr.ExactMatch(key8(500), []SetID{7}, e1); err != nil {
		t.Fatal(err)
	}
	e40 := pager.NewTracker()
	if _, _, err := tr.ExactMatch(key8(500), all, e40); err != nil {
		t.Fatal(err)
	}
	if e40.Reads() > e1.Reads()+2 {
		t.Fatalf("CH exact match should be flat in #sets: %d vs %d", e1.Reads(), e40.Reads())
	}

	r1 := pager.NewTracker()
	if _, _, err := tr.RangeQuery(key8(100), key8(199), []SetID{7}, r1); err != nil {
		t.Fatal(err)
	}
	r40 := pager.NewTracker()
	if _, _, err := tr.RangeQuery(key8(100), key8(199), all, r40); err != nil {
		t.Fatal(err)
	}
	if r40.Reads() > r1.Reads()+2 {
		t.Fatalf("CH range cost should not depend on #sets: %d vs %d", r1.Reads(), r40.Reads())
	}
}

// TestOverflowDirectories: few distinct keys force multi-page records; the
// reads are charged.
func TestOverflowDirectories(t *testing.T) {
	tr := buildTree(t, 20000, 8, 10, 4) // 2000 oids per key -> ~8KB records
	trk := pager.NewTracker()
	res, _, err := tr.ExactMatch(key8(5), []SetID{0, 1, 2, 3, 4, 5, 6, 7}, trk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 1500 {
		t.Fatalf("only %d results", len(res))
	}
	if trk.Reads() < 5 {
		t.Fatalf("overflow record read only %d pages", trk.Reads())
	}
}
