package chtree

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/encoding"
	"repro/internal/pager"
)

// buildStressTree bulk-loads a CH-tree spanning many pages: 200 distinct
// keys shared across 6 sets, several oids per (key, set) directory.
func buildStressTree(t *testing.T, f pager.File) *Tree {
	t.Helper()
	tree, err := New(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	oid := encoding.OID(1)
	for k := 0; k < 200; k++ {
		key := []byte(fmt.Sprintf("val-%04d", k))
		for s := SetID(1); s <= 6; s++ {
			for r := 0; r < 1+int(s)%3; r++ {
				entries = append(entries, Entry{Key: key, Set: s, OID: oid})
				oid++
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if c := string(a.Key); c != string(b.Key) {
			return c < string(b.Key)
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		return a.OID < b.OID
	})
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	return tree
}

type chQuery struct {
	lo, hi []byte // equal for exact match
	sets   []SetID
}

func chQueries() []chQuery {
	return []chQuery{
		{lo: []byte("val-0042"), hi: []byte("val-0042"), sets: []SetID{1, 2, 3, 4, 5, 6}},
		{lo: []byte("val-0100"), hi: []byte("val-0100"), sets: []SetID{2, 5}},
		{lo: []byte("val-0010"), hi: []byte("val-0030"), sets: []SetID{1, 3, 6}},
		{lo: []byte("val-0150"), hi: []byte("val-0199"), sets: []SetID{4}},
		{lo: []byte("val-0000"), hi: []byte("val-0005"), sets: []SetID{1, 2, 3, 4, 5, 6}},
	}
}

func runCHQuery(tree *Tree, q chQuery, tr *pager.Tracker) ([]Result, Stats, error) {
	if string(q.lo) == string(q.hi) {
		return tree.ExactMatch(q.lo, q.sets, tr)
	}
	return tree.RangeQuery(q.lo, q.hi, q.sets, tr)
}

// TestConcurrentReaders runs the mixed exact/range workload from many
// goroutines (direct and pooled page file) with private trackers, checking
// every result set against the sequential baseline. Run under -race.
func TestConcurrentReaders(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		name := "direct"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			var f pager.File = pager.NewMemFile(0)
			if pooled {
				pool, err := bufferpool.New(f, bufferpool.Config{Pages: 16})
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				f = pool
			}
			tree := buildStressTree(t, f)
			if err := tree.DropCache(); err != nil {
				t.Fatal(err)
			}
			queries := chQueries()
			want := make([][]Result, len(queries))
			for i, q := range queries {
				rs, _, err := runCHQuery(tree, q, nil)
				if err != nil {
					t.Fatalf("baseline %d: %v", i, err)
				}
				want[i] = rs
			}

			const goroutines = 10
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tr := pager.NewTracker()
					for rep := 0; rep < 20; rep++ {
						i := (g + rep) % len(queries)
						rs, stats, err := runCHQuery(tree, queries[i], tr)
						if err != nil {
							t.Errorf("g%d query %d: %v", g, i, err)
							return
						}
						if len(rs) != len(want[i]) {
							t.Errorf("g%d query %d: %d results, want %d", g, i, len(rs), len(want[i]))
							return
						}
						for k := range rs {
							if rs[k] != want[i][k] {
								t.Errorf("g%d query %d result %d: %+v want %+v", g, i, k, rs[k], want[i][k])
								return
							}
						}
						if stats.Matches != len(want[i]) {
							t.Errorf("g%d query %d: stats.Matches=%d want %d", g, i, stats.Matches, len(want[i]))
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentTrackerInvariance: merged per-goroutine distinct-page
// counts equal a sequential run under one shared tracker.
func TestConcurrentTrackerInvariance(t *testing.T) {
	tree := buildStressTree(t, pager.NewMemFile(0))
	if err := tree.DropCache(); err != nil {
		t.Fatal(err)
	}
	queries := chQueries()

	shared := pager.NewTracker()
	for _, q := range queries {
		if _, _, err := runCHQuery(tree, q, shared); err != nil {
			t.Fatal(err)
		}
	}

	per := make([]*pager.Tracker, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		per[i] = pager.NewTracker()
		wg.Add(1)
		go func(i int, q chQuery) {
			defer wg.Done()
			if _, _, err := runCHQuery(tree, q, per[i]); err != nil {
				t.Error(err)
			}
		}(i, q)
	}
	wg.Wait()

	merged := pager.NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}
	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged concurrent pages %d != sequential shared pages %d",
			merged.Reads(), shared.Reads())
	}
}
