// Package chtree implements the classic class-hierarchy index (CH-tree) of
// Kim, Kim and Dale, the first baseline of the U-index paper's Section 2: a
// key-grouped B+-tree whose leaf record for an attribute value holds a set
// directory — for every class in the indexed hierarchy, the list of object
// ids with that value.
//
// The CH-tree "attempts to store all entries with the same key in one leaf
// page", so an exact-match lookup is a single descent plus the record pages
// — its strength — while a query touching few classes still reads every
// class's object ids for each key in range — its weakness ("Range queries
// then scan pages which may not be relevant to the query"). Long records
// spill into overflow pages, whose reads are charged to the query tracker.
package chtree

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
)

// SetID identifies one class (set) in the directory.
type SetID uint16

// Config mirrors btree.Config.
type Config struct {
	MaxEntries int
}

// Tree is a CH-tree.
type Tree struct {
	t *btree.Tree
}

// Stats reports the cost of one query.
type Stats struct {
	PagesRead      int
	EntriesScanned int // directory entries (class lists) inspected
	Matches        int
}

// New creates an empty CH-tree in the page file.
func New(f pager.File, cfg Config) (*Tree, error) {
	t, err := btree.Create(f, btree.Config{MaxEntries: cfg.MaxEntries})
	if err != nil {
		return nil, err
	}
	return &Tree{t: t}, nil
}

// directory is the leaf record: per class, the sorted object ids.
type directory map[SetID][]encoding.OID

func encodeDirectory(d directory) []byte {
	sets := make([]SetID, 0, len(d))
	for s := range d {
		sets = append(sets, s)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(sets)))
	for _, s := range sets {
		out = binary.BigEndian.AppendUint16(out, uint16(s))
		out = binary.AppendUvarint(out, uint64(len(d[s])))
		for _, o := range d[s] {
			out = binary.BigEndian.AppendUint32(out, uint32(o))
		}
	}
	return out
}

func decodeDirectory(b []byte) (directory, error) {
	d := directory{}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("chtree: corrupt directory header")
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("chtree: corrupt directory set id")
		}
		s := SetID(binary.BigEndian.Uint16(b))
		b = b[2:]
		cnt, sz := binary.Uvarint(b)
		if sz <= 0 || len(b[sz:]) < int(cnt)*4 {
			return nil, fmt.Errorf("chtree: corrupt directory list")
		}
		b = b[sz:]
		oids := make([]encoding.OID, cnt)
		for j := range oids {
			oids[j] = encoding.OID(binary.BigEndian.Uint32(b))
			b = b[4:]
		}
		d[s] = oids
	}
	return d, nil
}

// Insert adds an object id under (key, set), growing the key's directory.
func (c *Tree) Insert(set SetID, key []byte, oid encoding.OID) error {
	raw, ok, err := c.t.Get(key, nil)
	if err != nil {
		return err
	}
	d := directory{}
	if ok {
		if d, err = decodeDirectory(raw); err != nil {
			return err
		}
	}
	list := d[set]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= oid })
	if i < len(list) && list[i] == oid {
		return nil // already present
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = oid
	d[set] = list
	return c.t.Insert(key, encodeDirectory(d))
}

// Delete removes an object id from (key, set). It reports whether the
// entry existed.
func (c *Tree) Delete(set SetID, key []byte, oid encoding.OID) (bool, error) {
	raw, ok, err := c.t.Get(key, nil)
	if err != nil || !ok {
		return false, err
	}
	d, err := decodeDirectory(raw)
	if err != nil {
		return false, err
	}
	list := d[set]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= oid })
	if i >= len(list) || list[i] != oid {
		return false, nil
	}
	list = append(list[:i], list[i+1:]...)
	if len(list) == 0 {
		delete(d, set)
	} else {
		d[set] = list
	}
	if len(d) == 0 {
		_, err := c.t.Delete(key)
		return true, err
	}
	return true, c.t.Insert(key, encodeDirectory(d))
}

// Entry is one (key, set, oid) item for bulk loading.
type Entry struct {
	Key []byte
	Set SetID
	OID encoding.OID
}

// BulkLoad builds the tree from entries sorted by (key, set, oid).
func (c *Tree) BulkLoad(entries []Entry) error {
	type rec struct {
		key []byte
		dir directory
	}
	var recs []rec
	for _, e := range entries {
		if len(recs) == 0 || string(recs[len(recs)-1].key) != string(e.Key) {
			recs = append(recs, rec{key: e.Key, dir: directory{}})
		}
		d := recs[len(recs)-1].dir
		d[e.Set] = append(d[e.Set], e.OID)
	}
	i := 0
	return c.t.BulkLoad(func() ([]byte, []byte, bool, error) {
		if i >= len(recs) {
			return nil, nil, false, nil
		}
		r := recs[i]
		i++
		return r.key, encodeDirectory(r.dir), true, nil
	})
}

// Len returns the number of distinct key values.
func (c *Tree) Len() int { return c.t.Len() }

// PageCount returns the number of pages including directory overflow
// chains (long object-id lists spill out of the leaves; they are part of
// the structure's footprint).
func (c *Tree) PageCount() (int, error) {
	n, err := c.t.PageCount()
	if err != nil {
		return 0, err
	}
	ov, err := c.t.OverflowPageCount()
	if err != nil {
		return 0, err
	}
	return n + ov, nil
}

// Height returns the tree height.
func (c *Tree) Height() int { return c.t.Height() }

// DropCache flushes and clears the buffer pool.
func (c *Tree) DropCache() error { return c.t.DropCache() }

// Result is one matched object.
type Result struct {
	Set SetID
	OID encoding.OID
}

// ExactMatch returns the object ids with the given key in the queried
// sets. The whole directory record is read (key grouping), then filtered.
func (c *Tree) ExactMatch(key []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	var stats Stats
	raw, ok, err := c.t.Get(key, tr)
	if err != nil {
		return nil, stats, err
	}
	var out []Result
	if ok {
		d, err := decodeDirectory(raw)
		if err != nil {
			return nil, stats, err
		}
		stats.EntriesScanned += len(d)
		out = filterDir(d, sets, out, &stats)
	}
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}

// RangeQuery returns the object ids with key in [lo, hi] in the queried
// sets. Every record in range is read in full — the key-grouping penalty.
func (c *Tree) RangeQuery(lo, hi []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	var stats Stats
	var out []Result
	hiEx := encoding.PrefixEnd(hi)
	err := c.t.Scan(context.Background(), lo, hiEx, tr, func(_, v []byte) ([]byte, bool, error) {
		d, err := decodeDirectory(v)
		if err != nil {
			return nil, true, err
		}
		stats.EntriesScanned += len(d)
		out = filterDir(d, sets, out, &stats)
		return nil, false, nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}

func filterDir(d directory, sets []SetID, out []Result, stats *Stats) []Result {
	for _, s := range sets {
		for _, o := range d[s] {
			out = append(out, Result{Set: s, OID: o})
			stats.Matches++
		}
	}
	return out
}
