package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// memBlock is a minimal in-memory BlockFile for the unit tests; the
// crash-fidelity variant lives in internal/faultfs.
type memBlock struct {
	mu   sync.Mutex
	data []byte
}

func (m *memBlock) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

func (m *memBlock) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if grow := off + int64(len(p)); grow > int64(len(m.data)) {
		m.data = append(m.data, make([]byte, grow-int64(len(m.data)))...)
	}
	return copy(m.data[off:], p), nil
}

func (m *memBlock) Sync() error { return nil }

func (m *memBlock) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

func (m *memBlock) Close() error { return nil }

func payloadFor(lsn uint64) []byte {
	return []byte(fmt.Sprintf("record-%06d", lsn))
}

func appendSync(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn := l.Append(payloadFor(l.LastAppended() + 1))
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable(%d): %v", lsn, err)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(from, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, 10)
	if got := l.LastAppended(); got != 10 {
		t.Fatalf("LastAppended = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Durable(); got != 10 {
		t.Fatalf("reopened Durable = %d, want 10", got)
	}
	got := collect(t, l, 4)
	if len(got) != 6 {
		t.Fatalf("replayed %d records from 4, want 6", len(got))
	}
	for lsn := uint64(5); lsn <= 10; lsn++ {
		if got[lsn] != string(payloadFor(lsn)) {
			t.Fatalf("record %d = %q, want %q", lsn, got[lsn], payloadFor(lsn))
		}
	}
	// Appending after reopen continues the LSN sequence.
	if lsn := l.Append(payloadFor(11)); lsn != 11 {
		t.Fatalf("post-reopen Append assigned %d, want 11", lsn)
	}
	if err := l.WaitDurable(11); err != nil {
		t.Fatal(err)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, 5)
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last record's payload in place: the scan must stop
	// before it, recovering exactly the first four.
	size, _ := m.Size()
	buf := make([]byte, 1)
	if _, err := m.ReadAt(buf, size-1); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := m.WriteAt(buf, size-1); err != nil {
		t.Fatal(err)
	}

	l, err = OpenOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Durable(); got != 4 {
		t.Fatalf("Durable after torn tail = %d, want 4", got)
	}
	// The torn record's LSN is reassigned: new appends overwrite the tail.
	if lsn := l.Append(payloadFor(5)); lsn != 5 {
		t.Fatalf("Append after torn tail assigned %d, want 5", lsn)
	}
	if err := l.WaitDurable(5); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 0); len(got) != 5 || got[5] != string(payloadFor(5)) {
		t.Fatalf("replay after rewrite = %v", got)
	}
	l.Abandon()
}

func TestLogGroupCommitCoalesces(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{MaxDelay: time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn := l.Append([]byte("concurrent-commit"))
				if err := l.WaitDurable(lsn); err != nil {
					t.Errorf("WaitDurable: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*per)
	}
	if st.BatchRecords != writers*per {
		t.Fatalf("BatchRecords = %d, want %d", st.BatchRecords, writers*per)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d commits", st.Fsyncs, st.Appends)
	}
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}
}

func TestLogTruncatePartialAndReset(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, 8)
	live := l.LiveBytes()

	// Partial truncation reclaims whole batches below the cut.
	if err := l.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if got := l.LiveBytes(); got >= live {
		t.Fatalf("LiveBytes after partial truncate = %d, want < %d", got, live)
	}
	if got := collect(t, l, 5); len(got) != 3 {
		t.Fatalf("replay(5) after truncate = %v, want records 6..8", got)
	}

	// Full truncation rewinds the write offset to the start of the file.
	if err := l.TruncateTo(8); err != nil {
		t.Fatal(err)
	}
	if got := l.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes after full truncate = %d, want 0", got)
	}
	// New records land over the recycled region but keep increasing LSNs.
	if lsn := l.Append(payloadFor(9)); lsn != 9 {
		t.Fatalf("post-reset Append assigned %d, want 9", lsn)
	}
	if err := l.WaitDurable(9); err != nil {
		t.Fatal(err)
	}
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}

	// Reopen: the reset slot plus the one new record.
	l, err = OpenOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Durable(); got != 9 {
		t.Fatalf("Durable after reopen = %d, want 9", got)
	}
	got := collect(t, l, 0)
	if len(got) != 1 || got[9] != string(payloadFor(9)) {
		t.Fatalf("replay after reset reopen = %v, want only record 9", got)
	}
	l.Abandon()
}

func TestLogStaleRecordAfterResetIgnored(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two records of different sizes so the stale second record starts
	// inside the region a single new record does not fully overwrite.
	for lsn := uint64(1); lsn <= 2; lsn++ {
		l.Append(payloadFor(lsn))
	}
	if err := l.WaitDurable(2); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(2); err != nil {
		t.Fatal(err)
	}
	// One short new record: the bytes of stale record 2 still sit beyond
	// it on disk, CRC-valid, but with a smaller-than-expected LSN.
	l.Append([]byte("x"))
	if err := l.WaitDurable(3); err != nil {
		t.Fatal(err)
	}
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}

	l, err = OpenOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 1 || got[3] != "x" {
		t.Fatalf("stale record leaked into replay: %v", got)
	}
	l.Abandon()
}

func TestLogCorruptHeader(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, 1)
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}
	var bad [4]byte
	binary.BigEndian.PutUint32(bad[:], 0xdeadbeef)
	if _, err := m.WriteAt(bad[:], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOn(m, Options{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("OpenOn with bad magic = %v, want ErrCorruptLog", err)
	}
}

func TestLogCloseReleasesWaiters(t *testing.T) {
	m := &memBlock{}
	l, err := CreateOn(m, Options{MaxDelay: time.Hour}) // never flushes on its own
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.Append([]byte("pending"))
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.close(true); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// Close drains pending records, so the waiter may see success;
		// it must not block forever either way.
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter released with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after Close")
	}
}
