// Package wal implements the write-ahead commit log that sits in front of
// the shadow-paging checkpoints: an append-only record log with per-record
// CRC32C + length framing, a group-commit daemon that coalesces concurrent
// committers into one fsync, and a checkpoint-driven truncation protocol.
//
// Layout on the BlockFile:
//
//	[0,   16)   magic, version (and zero padding to the first slot)
//	[512, 540)  truncation slot, even generations
//	[1024,1052) truncation slot, odd generations
//	[1536, ...) records
//
// A truncation slot is [8B slot generation][8B start LSN][8B start offset]
// [4B CRC32C]; the two slots alternate by generation parity exactly like
// pager.Manifest commits, so a torn slot write leaves the previous
// truncation point intact. startLSN is the LSN of the record stored at
// startOff.
//
// A record is [4B payload length][4B CRC32C over LSN+payload][8B LSN]
// [payload]. LSNs are assigned densely from 1 and strictly increase over
// the whole life of the file — even across truncation resets that rewind
// the write offset — which is what makes tail scanning sound: a stale
// record left over from an earlier pass always carries an LSN smaller than
// the one expected at its offset, so it terminates the scan instead of
// replaying.
//
// Concurrency contract: Append never blocks on I/O (records buffer in
// memory and the group-commit daemon writes them); WaitDurable blocks the
// caller until its record's batch is fsynced. Any number of goroutines may
// Append/WaitDurable concurrently; TruncateTo is called by one checkpointer
// at a time.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pager"
)

// ErrCorruptLog reports a structurally damaged log: bad magic or version,
// or no valid truncation slot. A torn record tail is not corruption — it is
// the expected shape of a crash and is silently truncated.
var ErrCorruptLog = errors.New("wal: corrupt log")

// ErrClosed is returned by WaitDurable when the log is closed before the
// record became durable.
var ErrClosed = errors.New("wal: log closed")

const (
	logMagic   = 0x5557414c // "UWAL"
	logVersion = 1

	slot0Off = 512
	slotSize = 512
	slotLen  = 8 + 8 + 8 + 4 // gen, startLSN, startOff, crc

	// dataStart is the offset of the first record.
	dataStart = slot0Off + 2*slotSize

	recHeaderLen = 4 + 4 + 8 // length, crc, lsn

	// maxRecordLen bounds a single record payload; a scanned length beyond
	// it is treated as a torn tail.
	maxRecordLen = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes the group-commit daemon.
type Options struct {
	// MaxDelay is how long the daemon waits after being woken before
	// flushing, letting more committers join the batch. 0 flushes
	// immediately — concurrent committers still coalesce naturally, because
	// appends that arrive during one flush's fsync all ride the next one.
	MaxDelay time.Duration
	// MaxBatch flushes as soon as this many records are pending, even
	// within the MaxDelay window. 0 means no record-count trigger.
	MaxBatch int
}

// Stats is a snapshot of the log's cumulative counters.
type Stats struct {
	// Appends counts records ever appended.
	Appends uint64
	// Fsyncs counts Sync calls issued to the backing file by group commit
	// (truncation-slot syncs are counted separately in TruncSyncs).
	Fsyncs uint64
	// Batches counts group-commit flushes; BatchRecords sums the records
	// they carried, so BatchRecords/Batches is the mean group size.
	Batches      uint64
	BatchRecords uint64
	// TruncSyncs counts truncation-slot commits.
	TruncSyncs uint64
}

// mark remembers the file offset of the first record of one flushed batch;
// TruncateTo discards whole batches using these.
type mark struct {
	lsn uint64
	off int64
}

// Log is one write-ahead log on a BlockFile.
type Log struct {
	b    pager.BlockFile
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // broadcast when durable/failed/closed changes

	nextLSN  uint64 // next LSN to assign
	durable  uint64 // highest fsynced LSN
	buf      []byte // encoded frames awaiting flush
	bufRecs  int
	writeOff int64 // file offset of the next flush
	marks    []mark

	startLSN uint64 // first LSN at startOff, per the durable slot
	startOff int64
	slotGen  uint64

	// truncating pauses flushes while a truncation reset rewinds writeOff:
	// no record may land at the recycled offset before the new slot is
	// durable.
	truncating bool
	failed     error // sticky first I/O error
	closed     bool

	kick  chan struct{} // wakes the daemon
	full  chan struct{} // MaxBatch reached; cuts the MaxDelay window short
	stopc chan struct{}
	done  chan struct{}

	appends    atomic.Uint64
	fsyncs     atomic.Uint64
	batches    atomic.Uint64
	batchRecs  atomic.Uint64
	truncSyncs atomic.Uint64
}

// osFile adapts an *os.File to pager.BlockFile.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create initializes a new log file at path (truncating any previous
// contents) and starts its group-commit daemon.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l, err := CreateOn(osFile{f}, opts)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// Open opens an existing log file, truncating any torn tail, and starts its
// group-commit daemon.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	l, err := OpenOn(osFile{f}, opts)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// CreateOn initializes a log on an empty BlockFile: header, the generation-1
// truncation slot (start LSN 1 at dataStart), one sync.
func CreateOn(b pager.BlockFile, opts Options) (*Log, error) {
	hdr := make([]byte, dataStart)
	binary.BigEndian.PutUint32(hdr[0:], logMagic)
	binary.BigEndian.PutUint32(hdr[4:], logVersion)
	if _, err := b.WriteAt(hdr, 0); err != nil {
		return nil, err
	}
	if _, err := b.WriteAt(encodeSlot(1, 1, dataStart), slotOff(1)); err != nil {
		return nil, err
	}
	if err := b.Sync(); err != nil {
		return nil, err
	}
	l := newLog(b, opts)
	l.nextLSN, l.durable = 1, 0
	l.startLSN, l.startOff, l.slotGen = 1, dataStart, 1
	l.writeOff = dataStart
	l.start()
	return l, nil
}

// OpenOn recovers a log from a BlockFile: it elects the newest valid
// truncation slot, scans the records from its start point, and truncates
// the tail at the first record that fails its length, checksum, or LSN
// check. Structural damage (header or both slots) reports an error matching
// ErrCorruptLog; a torn tail does not.
func OpenOn(b pager.BlockFile, opts Options) (*Log, error) {
	size, err := b.Size()
	if err != nil {
		return nil, err
	}
	if size < dataStart {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorruptLog, size)
	}
	var hdr [8]byte
	if err := readFull(b, hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorruptLog, err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptLog)
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != logVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptLog, v)
	}
	l := newLog(b, opts)
	var slot [slotLen]byte
	for parity := uint64(0); parity < 2; parity++ {
		if err := readFull(b, slot[:], slotOff(parity)); err != nil {
			continue
		}
		gen, lsn, off, ok := decodeSlot(slot[:], parity)
		if ok && gen > l.slotGen {
			l.slotGen, l.startLSN, l.startOff = gen, lsn, off
		}
	}
	if l.slotGen == 0 {
		return nil, fmt.Errorf("%w: no valid truncation slot", ErrCorruptLog)
	}
	if l.startOff < dataStart {
		return nil, fmt.Errorf("%w: truncation slot points at offset %d inside the header", ErrCorruptLog, l.startOff)
	}
	end, last, marks, err := scan(b, l.startLSN, l.startOff, size, nil)
	if err != nil {
		return nil, err
	}
	l.nextLSN, l.durable = last+1, last
	l.writeOff = end
	l.marks = marks
	l.start()
	return l, nil
}

func newLog(b pager.BlockFile, opts Options) *Log {
	l := &Log{
		b:     b,
		opts:  opts,
		kick:  make(chan struct{}, 1),
		full:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *Log) start() { go l.daemon() }

func slotOff(gen uint64) int64 { return slot0Off + int64(gen%2)*slotSize }

func encodeSlot(gen, lsn uint64, off int64) []byte {
	buf := make([]byte, 0, slotLen)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = binary.BigEndian.AppendUint64(buf, uint64(off))
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeSlot validates one truncation slot: checksum, nonzero generation,
// and generation parity matching the cell.
func decodeSlot(buf []byte, parity uint64) (gen, lsn uint64, off int64, ok bool) {
	if binary.BigEndian.Uint32(buf[24:]) != crc32.Checksum(buf[:24], castagnoli) {
		return 0, 0, 0, false
	}
	gen = binary.BigEndian.Uint64(buf[0:])
	if gen == 0 || gen%2 != parity {
		return 0, 0, 0, false
	}
	return gen, binary.BigEndian.Uint64(buf[8:]), int64(binary.BigEndian.Uint64(buf[16:])), true
}

// scan walks the record chain from (lsn, off), stopping at the first record
// that fails validation — the torn tail. It returns the end offset, the
// last valid LSN (lsn-1 when the region is empty), and a mark per record.
// fn, when non-nil, is called with each valid record's LSN and payload.
func scan(b pager.BlockFile, lsn uint64, off, size int64, fn func(uint64, []byte) error) (int64, uint64, []mark, error) {
	var marks []mark
	expect := lsn
	for {
		if off+recHeaderLen > size {
			break
		}
		var hdr [recHeaderLen]byte
		if err := readFull(b, hdr[:], off); err != nil {
			break
		}
		length := int64(binary.BigEndian.Uint32(hdr[0:]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		got := binary.BigEndian.Uint64(hdr[8:])
		if length > maxRecordLen || off+recHeaderLen+length > size {
			break
		}
		payload := make([]byte, length)
		if err := readFull(b, payload, off+recHeaderLen); err != nil {
			break
		}
		if crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload) != sum {
			break
		}
		if got != expect {
			break
		}
		if fn != nil {
			if err := fn(got, payload); err != nil {
				return 0, 0, nil, err
			}
		}
		marks = append(marks, mark{lsn: expect, off: off})
		expect++
		off += recHeaderLen + length
	}
	return off, expect - 1, marks, nil
}

// Append assigns the next LSN to payload and buffers its frame for the
// group-commit daemon. It never performs I/O and never fails; durability
// (and any I/O failure) surfaces in WaitDurable.
func (l *Log) Append(payload []byte) uint64 {
	l.mu.Lock()
	lsn := l.nextLSN
	l.nextLSN++
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:], lsn)
	sum := crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[4:], sum)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.bufRecs++
	batchFull := l.opts.MaxBatch > 0 && l.bufRecs >= l.opts.MaxBatch
	l.mu.Unlock()
	l.appends.Add(1)
	if batchFull {
		signal(l.full)
		signal(l.kick)
	}
	return lsn
}

// WaitDurable blocks until the record with the given LSN is fsynced,
// kicking the group-commit daemon. Concurrent waiters coalesce: one flush
// satisfies every LSN it covers.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn && l.failed == nil && !l.closed {
		signal(l.kick)
		l.cond.Wait()
	}
	if l.durable >= lsn {
		return nil
	}
	if l.failed != nil {
		return l.failed
	}
	return ErrClosed
}

// signal does a non-blocking send on a 1-buffered wake channel.
func signal(c chan struct{}) {
	select {
	case c <- struct{}{}:
	default:
	}
}

// daemon is the group-commit loop: woken by the first waiter (or a full
// batch), it optionally lingers MaxDelay to let more committers join, then
// writes and fsyncs everything pending in one batch.
func (l *Log) daemon() {
	defer close(l.done)
	for {
		select {
		case <-l.stopc:
			l.flush()
			return
		case <-l.kick:
		}
		if d := l.opts.MaxDelay; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-l.full:
				t.Stop()
			case <-l.stopc:
				t.Stop()
				l.flush()
				return
			}
		}
		l.flush()
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// flush writes and fsyncs every pending record as one batch. Only the
// daemon calls it, so batches hit the file in LSN order.
func (l *Log) flush() {
	l.mu.Lock()
	if len(l.buf) == 0 || l.failed != nil || l.truncating {
		l.mu.Unlock()
		return
	}
	data, recs := l.buf, l.bufRecs
	l.buf, l.bufRecs = nil, 0
	first := l.nextLSN - uint64(recs)
	last := l.nextLSN - 1
	off := l.writeOff
	l.writeOff += int64(len(data))
	l.marks = append(l.marks, mark{lsn: first, off: off})
	l.mu.Unlock()

	var err error
	if _, werr := l.b.WriteAt(data, off); werr != nil {
		err = werr
	} else if serr := l.b.Sync(); serr != nil {
		err = serr
	}

	l.mu.Lock()
	if err != nil {
		if l.failed == nil {
			l.failed = err
		}
	} else {
		l.durable = last
		l.fsyncs.Add(1)
		l.batches.Add(1)
		l.batchRecs.Add(uint64(recs))
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// LastAppended returns the highest LSN ever assigned (0 when none).
func (l *Log) LastAppended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Durable returns the highest fsynced LSN.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// LiveBytes returns the bytes between the truncation point and the append
// head, including buffered unflushed records — the checkpoint-lag measure.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeOff - l.startOff + int64(len(l.buf))
}

// Stats snapshots the cumulative counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:      l.appends.Load(),
		Fsyncs:       l.fsyncs.Load(),
		Batches:      l.batches.Load(),
		BatchRecords: l.batchRecs.Load(),
		TruncSyncs:   l.truncSyncs.Load(),
	}
}

// Replay re-reads the durable log and calls fn for every record with
// LSN > from, in LSN order. It scans only what was on disk when the log
// was opened plus completed flushes; call it during recovery, before
// concurrent appends begin.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	lsn, off, end := l.startLSN, l.startOff, l.writeOff
	l.mu.Unlock()
	_, _, _, err := scan(l.b, lsn, off, end, func(got uint64, payload []byte) error {
		if got <= from {
			return nil
		}
		return fn(got, payload)
	})
	return err
}

// TruncateTo logically discards every record with LSN <= lsn by committing
// a new truncation slot. Physical space is reclaimed at flushed-batch
// granularity, and fully — rewinding the write offset to the start of the
// file — once every appended record is both durable and covered by lsn.
// The caller must have made lsn durable in the state it is truncating
// toward (the checkpoint-LSN handshake): TruncateTo itself only ever runs
// after the manifest commit that published lsn.
func (l *Log) TruncateTo(lsn uint64) error {
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if lsn < l.startLSN {
		l.mu.Unlock()
		return nil
	}
	reset := len(l.buf) == 0 && l.durable == l.nextLSN-1 && lsn == l.durable
	var newLSN uint64
	var newOff int64
	if reset {
		// Pause flushes: nothing may land at the recycled offsets until
		// the new slot is durable, or a crash would recover the old slot
		// and lose fsynced records written over the old region.
		l.truncating = true
		newLSN, newOff = l.nextLSN, dataStart
	} else {
		// Keep the latest batch whose first record is still needed.
		idx := -1
		for i, m := range l.marks {
			if m.lsn <= lsn+1 {
				idx = i
			} else {
				break
			}
		}
		if idx < 0 {
			l.mu.Unlock()
			return nil
		}
		newLSN, newOff = l.marks[idx].lsn, l.marks[idx].off
		if newLSN == l.startLSN {
			l.mu.Unlock()
			return nil
		}
	}
	gen := l.slotGen + 1
	l.mu.Unlock()

	var err error
	if _, werr := l.b.WriteAt(encodeSlot(gen, newLSN, newOff), slotOff(gen)); werr != nil {
		err = werr
	} else if serr := l.b.Sync(); serr != nil {
		err = serr
	}

	l.mu.Lock()
	if err != nil {
		if l.failed == nil {
			l.failed = err
		}
		l.truncating = false
		l.cond.Broadcast()
		l.mu.Unlock()
		return err
	}
	l.truncSyncs.Add(1)
	l.slotGen, l.startLSN, l.startOff = gen, newLSN, newOff
	if reset {
		l.writeOff = dataStart
		l.marks = l.marks[:0]
		l.truncating = false
	} else {
		for len(l.marks) > 0 && l.marks[0].lsn < newLSN {
			l.marks = l.marks[1:]
		}
	}
	l.mu.Unlock()
	signal(l.kick) // appends may have queued behind the pause
	return nil
}

// Close flushes pending records, stops the group-commit daemon, and closes
// the backing file. Waiters still blocked are released with ErrClosed.
func (l *Log) Close() error {
	return l.close(true)
}

// Abandon stops the daemon without any further I/O and without closing the
// backing file — the crash-simulation teardown: the file is left exactly as
// the last completed operation left it.
func (l *Log) Abandon() {
	l.close(false)
}

func (l *Log) close(drain bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	if !drain {
		// Make flush a no-op for the daemon's shutdown pass.
		l.truncating = true
	}
	l.mu.Unlock()
	close(l.stopc)
	<-l.done
	l.mu.Lock()
	err := l.failed
	l.cond.Broadcast()
	l.mu.Unlock()
	if !drain {
		return err
	}
	if cerr := l.b.Close(); err == nil {
		err = cerr
	}
	return err
}

func readFull(b pager.BlockFile, buf []byte, off int64) error {
	n, err := b.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil {
		err = errors.New("short read")
	}
	return err
}
