// Package htree implements the H-tree of Low, Ooi and Lu ("H-trees: a
// dynamic associative search index for OODB", SIGMOD 1992), the
// set-grouping baseline of the U-index paper's Section 2: one B+-tree per
// class, nested along the class hierarchy by link pointers between trees.
//
// The defining cost behaviour, quoted directly by the paper, is that "the
// H-tree groups all members of a single set at the leaf page level
// according to their key values. This implies that retrieval costs are
// directly proportional to the number of sets queried." We keep one B+-tree
// per set inside a shared page file; the hierarchy links that let a
// subclass search start below the superclass root are modelled by the
// shared per-query tracker (a child search re-reads no page the parent
// search already fetched — their roots are distinct pages, so unlike the
// CG-tree nothing is actually shared, which is exactly the H-tree's
// weakness).
package htree

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/encoding"
	"repro/internal/pager"
)

// SetID identifies one class (set).
type SetID uint16

// Config mirrors btree.Config.
type Config struct {
	MaxEntries int
}

// Forest is an H-tree: a family of per-set B+-trees in one page file.
type Forest struct {
	f     pager.File
	cfg   Config
	trees map[SetID]*btree.Tree
}

// Stats reports the cost of one query.
type Stats struct {
	PagesRead      int
	EntriesScanned int
	Matches        int
}

// New creates an empty H-tree forest.
func New(f pager.File, cfg Config) *Forest {
	return &Forest{f: f, cfg: cfg, trees: make(map[SetID]*btree.Tree)}
}

func (h *Forest) tree(set SetID, create bool) (*btree.Tree, error) {
	if t, ok := h.trees[set]; ok {
		return t, nil
	}
	if !create {
		return nil, nil
	}
	t, err := btree.Create(h.f, btree.Config{MaxEntries: h.cfg.MaxEntries})
	if err != nil {
		return nil, err
	}
	h.trees[set] = t
	return t, nil
}

func entryKey(key []byte, oid encoding.OID) []byte {
	out := make([]byte, 0, len(key)+4)
	out = append(out, key...)
	return binary.BigEndian.AppendUint32(out, uint32(oid))
}

// Insert adds one (set, key, oid) entry.
func (h *Forest) Insert(set SetID, key []byte, oid encoding.OID) error {
	t, err := h.tree(set, true)
	if err != nil {
		return err
	}
	return t.Insert(entryKey(key, oid), nil)
}

// Delete removes one entry, reporting whether it existed.
func (h *Forest) Delete(set SetID, key []byte, oid encoding.OID) (bool, error) {
	t, err := h.tree(set, false)
	if err != nil || t == nil {
		return false, err
	}
	return t.Delete(entryKey(key, oid))
}

// Entry is one item for bulk loading.
type Entry struct {
	Set SetID
	Key []byte
	OID encoding.OID
}

// BulkLoad builds the forest from entries; they may arrive in any order.
func (h *Forest) BulkLoad(entries []Entry) error {
	perSet := map[SetID][]Entry{}
	for _, e := range entries {
		perSet[e.Set] = append(perSet[e.Set], e)
	}
	// Deterministic set order keeps page layout reproducible.
	sets := make([]SetID, 0, len(perSet))
	for s := range perSet {
		sets = append(sets, s)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	for _, s := range sets {
		es := perSet[s]
		sort.Slice(es, func(i, j int) bool {
			a, b := entryKey(es[i].Key, es[i].OID), entryKey(es[j].Key, es[j].OID)
			return string(a) < string(b)
		})
		t, err := h.tree(s, true)
		if err != nil {
			return err
		}
		if t.Len() != 0 {
			return fmt.Errorf("htree: BulkLoad into non-empty set %d", s)
		}
		i := 0
		err = t.BulkLoad(func() ([]byte, []byte, bool, error) {
			if i >= len(es) {
				return nil, nil, false, nil
			}
			e := es[i]
			i++
			return entryKey(e.Key, e.OID), nil, true, nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of entries across all sets.
func (h *Forest) Len() int {
	n := 0
	for _, t := range h.trees {
		n += t.Len()
	}
	return n
}

// PageCount returns the number of pages across all per-set trees.
func (h *Forest) PageCount() (int, error) {
	total := 0
	for _, t := range h.trees {
		n, err := t.PageCount()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// DropCache flushes and clears every per-set tree's buffer pool.
func (h *Forest) DropCache() error {
	for _, t := range h.trees {
		if err := t.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// Result is one matched entry.
type Result struct {
	Set SetID
	OID encoding.OID
}

// ExactMatch retrieves the oids with the given key in each queried set:
// one full descent per set (the H-tree's linear-in-sets cost).
func (h *Forest) ExactMatch(key []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	return h.query(key, key, sets, tr)
}

// RangeQuery retrieves the oids with key in [lo, hi] in each queried set.
// Per-set data is perfectly clustered — the best possible range behaviour,
// which is why the paper calls H-trees best for ranges.
func (h *Forest) RangeQuery(lo, hi []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	return h.query(lo, hi, sets, tr)
}

func (h *Forest) query(lo, hi []byte, sets []SetID, tr *pager.Tracker) ([]Result, Stats, error) {
	if tr == nil {
		tr = pager.NewTracker()
	}
	if len(lo) != len(hi) {
		return nil, Stats{}, fmt.Errorf("htree: range bounds of different lengths")
	}
	keyLen := len(lo)
	var out []Result
	var stats Stats
	hiEx := append(append([]byte(nil), hi...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	for _, s := range sets {
		t, err := h.tree(s, false)
		if err != nil {
			return nil, stats, err
		}
		if t == nil {
			continue
		}
		err = t.Scan(context.Background(), lo, hiEx, tr, func(k, _ []byte) ([]byte, bool, error) {
			stats.EntriesScanned++
			if len(k) != keyLen+4 {
				return nil, true, fmt.Errorf("htree: entry of %d bytes, want %d", len(k), keyLen+4)
			}
			oid := encoding.OID(binary.BigEndian.Uint32(k[keyLen:]))
			out = append(out, Result{Set: s, OID: oid})
			stats.Matches++
			return nil, false, nil
		})
		if err != nil {
			return nil, stats, err
		}
	}
	stats.PagesRead = tr.Reads()
	return out, stats, nil
}
