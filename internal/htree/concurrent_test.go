package htree

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/encoding"
	"repro/internal/pager"
)

// buildStressForest bulk-loads an H-tree forest spanning many pages: 6
// per-set trees over 200 distinct keys.
func buildStressForest(t *testing.T, f pager.File) *Forest {
	t.Helper()
	forest := New(f, Config{})
	var entries []Entry
	oid := encoding.OID(1)
	for k := 0; k < 200; k++ {
		key := []byte(fmt.Sprintf("val-%04d", k))
		for s := SetID(1); s <= 6; s++ {
			for r := 0; r < 1+int(s)%3; r++ {
				entries = append(entries, Entry{Set: s, Key: key, OID: oid})
				oid++
			}
		}
	}
	if err := forest.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	return forest
}

type hQuery struct {
	lo, hi []byte
	sets   []SetID
}

func hQueries() []hQuery {
	return []hQuery{
		{lo: []byte("val-0042"), hi: []byte("val-0042"), sets: []SetID{1, 2, 3, 4, 5, 6}},
		{lo: []byte("val-0100"), hi: []byte("val-0100"), sets: []SetID{2, 5}},
		{lo: []byte("val-0010"), hi: []byte("val-0030"), sets: []SetID{1, 3, 6}},
		{lo: []byte("val-0150"), hi: []byte("val-0199"), sets: []SetID{4}},
		// Includes a never-created set: the lazy tree map must stay
		// read-only on the query path.
		{lo: []byte("val-0000"), hi: []byte("val-0005"), sets: []SetID{1, 2, 3, 9}},
	}
}

func runHQuery(h *Forest, q hQuery, tr *pager.Tracker) ([]Result, Stats, error) {
	if string(q.lo) == string(q.hi) {
		return h.ExactMatch(q.lo, q.sets, tr)
	}
	return h.RangeQuery(q.lo, q.hi, q.sets, tr)
}

// TestConcurrentReaders runs the mixed exact/range workload from many
// goroutines (direct and pooled page file) with private trackers, checking
// every result set against the sequential baseline. Run under -race.
func TestConcurrentReaders(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		name := "direct"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			var f pager.File = pager.NewMemFile(0)
			if pooled {
				pool, err := bufferpool.New(f, bufferpool.Config{Pages: 16})
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				f = pool
			}
			forest := buildStressForest(t, f)
			if err := forest.DropCache(); err != nil {
				t.Fatal(err)
			}
			queries := hQueries()
			want := make([][]Result, len(queries))
			for i, q := range queries {
				rs, _, err := runHQuery(forest, q, nil)
				if err != nil {
					t.Fatalf("baseline %d: %v", i, err)
				}
				want[i] = rs
			}

			const goroutines = 10
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tr := pager.NewTracker()
					for rep := 0; rep < 20; rep++ {
						i := (g + rep) % len(queries)
						rs, stats, err := runHQuery(forest, queries[i], tr)
						if err != nil {
							t.Errorf("g%d query %d: %v", g, i, err)
							return
						}
						if len(rs) != len(want[i]) {
							t.Errorf("g%d query %d: %d results, want %d", g, i, len(rs), len(want[i]))
							return
						}
						for k := range rs {
							if rs[k] != want[i][k] {
								t.Errorf("g%d query %d result %d: %+v want %+v", g, i, k, rs[k], want[i][k])
								return
							}
						}
						if stats.Matches != len(want[i]) {
							t.Errorf("g%d query %d: stats.Matches=%d want %d", g, i, stats.Matches, len(want[i]))
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestConcurrentTrackerInvariance: merged per-goroutine distinct-page
// counts equal a sequential run under one shared tracker.
func TestConcurrentTrackerInvariance(t *testing.T) {
	forest := buildStressForest(t, pager.NewMemFile(0))
	if err := forest.DropCache(); err != nil {
		t.Fatal(err)
	}
	queries := hQueries()

	shared := pager.NewTracker()
	for _, q := range queries {
		if _, _, err := runHQuery(forest, q, shared); err != nil {
			t.Fatal(err)
		}
	}

	per := make([]*pager.Tracker, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		per[i] = pager.NewTracker()
		wg.Add(1)
		go func(i int, q hQuery) {
			defer wg.Done()
			if _, _, err := runHQuery(forest, q, per[i]); err != nil {
				t.Error(err)
			}
		}(i, q)
	}
	wg.Wait()

	merged := pager.NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}
	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged concurrent pages %d != sequential shared pages %d",
			merged.Reads(), shared.Reads())
	}
}
