package htree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pager"
)

func key8(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

func buildForest(t *testing.T, nObjects, nSets, nKeys int, seed int64) *Forest {
	t.Helper()
	h := New(pager.NewMemFile(1024), Config{})
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, nObjects)
	for i := range entries {
		entries[i] = Entry{
			Set: SetID(rng.Intn(nSets)),
			Key: key8(uint64(rng.Intn(nKeys))),
			OID: encoding.OID(i + 1),
		}
	}
	if err := h.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestInsertExactDelete(t *testing.T) {
	h := New(pager.NewMemFile(1024), Config{})
	for i := 0; i < 100; i++ {
		if err := h.Insert(SetID(i%4), key8(uint64(i%10)), encoding.OID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	res, stats, err := h.ExactMatch(key8(3), []SetID{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("ExactMatch = %v", res)
	}
	if stats.PagesRead == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	ok, err := h.Delete(3, key8(3), res[0].OID)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := h.Delete(3, key8(3), res[0].OID); ok {
		t.Fatal("double delete reported true")
	}
	if ok, _ := h.Delete(9, key8(3), 1); ok {
		t.Fatal("delete from absent set reported true")
	}
	res, _, _ = h.ExactMatch(key8(3), []SetID{3}, nil)
	if len(res) != 4 {
		t.Fatalf("after delete: %d", len(res))
	}
}

func TestRangeQuery(t *testing.T) {
	h := buildForest(t, 4000, 8, 100, 1)
	res, _, err := h.RangeQuery(key8(10), key8(19), []SetID{2, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 60 || len(res) > 140 {
		t.Fatalf("range returned %d", len(res))
	}
	for _, r := range res {
		if r.Set != 2 && r.Set != 5 {
			t.Fatalf("unqueried set: %+v", r)
		}
	}
	if _, _, err := h.RangeQuery(key8(1), []byte("xx"), []SetID{1}, nil); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

// TestCostProportionalToSets is the paper's characterization: "retrieval
// costs are directly proportional to the number of sets queried".
func TestCostProportionalToSets(t *testing.T) {
	h := buildForest(t, 30000, 40, 1000, 2)
	cost := func(n int) int {
		sets := make([]SetID, n)
		for i := range sets {
			sets[i] = SetID(i)
		}
		tr := pager.NewTracker()
		if _, _, err := h.ExactMatch(key8(500), sets, tr); err != nil {
			t.Fatal(err)
		}
		return tr.Reads()
	}
	c1, c10, c40 := cost(1), cost(10), cost(40)
	if !(c1 < c10 && c10 < c40) {
		t.Fatalf("costs not increasing: %d, %d, %d", c1, c10, c40)
	}
	// Roughly linear: 40 sets should cost at least 10x one set.
	if c40 < 10*c1 {
		t.Fatalf("cost not proportional: 1 set %d, 40 sets %d", c1, c40)
	}
	// And ranges on one set are perfectly clustered.
	one := pager.NewTracker()
	if _, _, err := h.RangeQuery(key8(100), key8(199), []SetID{7}, one); err != nil {
		t.Fatal(err)
	}
	pages, err := h.PageCount()
	if err != nil {
		t.Fatal(err)
	}
	if one.Reads() > pages/20 {
		t.Fatalf("single-set range read %d of %d pages", one.Reads(), pages)
	}
}

func TestEmptyForest(t *testing.T) {
	h := New(pager.NewMemFile(1024), Config{})
	res, _, err := h.ExactMatch(key8(1), []SetID{0, 1}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty forest query = %v, %v", res, err)
	}
	if n, err := h.PageCount(); err != nil || n != 0 {
		t.Fatalf("PageCount = %d, %v", n, err)
	}
	if err := h.DropCache(); err != nil {
		t.Fatal(err)
	}
}
