package uindex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMetricsSnapshot exercises the merged Metrics() facade: query, write,
// checkpoint, and snapshot counters all move, and errors land in the error
// counters rather than the success ones.
func TestMetricsSnapshot(t *testing.T) {
	db, ids := paperDB(t)
	ctx := context.Background()

	base := db.Metrics()
	if base.Indexes != 2 {
		t.Fatalf("Indexes = %d, want 2", base.Indexes)
	}

	ms, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(ctx, "nope", Query{Value: Exact("Red")}); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("want ErrIndexNotFound, got %v", err)
	}
	oid, err := db.Insert("Truck", Attrs{"Name": "Hauler", "Color": "Red"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(oid, "Color", "Blue"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("NoSuchClass", Attrs{"Name": "x"}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("want ErrUnknownClass, got %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Query(ctx, "color", Query{Value: Exact("Red")}); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics()
	// 1 direct + 1 failed direct + 1 snapshot query. ErrIndexNotFound is
	// reported before execution, so only the completed ones count.
	if got := m.Queries - base.Queries; got != 3 {
		t.Errorf("Queries moved by %d, want 3", got)
	}
	if got := m.QueryErrors - base.QueryErrors; got != 1 {
		t.Errorf("QueryErrors moved by %d, want 1", got)
	}
	if m.Matches-base.Matches < uint64(len(ms)) {
		t.Errorf("Matches moved by %d, want >= %d", m.Matches-base.Matches, len(ms))
	}
	if got := m.Inserts - base.Inserts; got != 1 {
		t.Errorf("Inserts moved by %d, want 1", got)
	}
	if got := m.Sets - base.Sets; got != 1 {
		t.Errorf("Sets moved by %d, want 1", got)
	}
	if got := m.Deletes - base.Deletes; got != 1 {
		t.Errorf("Deletes moved by %d, want 1", got)
	}
	if got := m.WriteErrors - base.WriteErrors; got != 1 {
		t.Errorf("WriteErrors moved by %d, want 1", got)
	}
	if got := m.Checkpoints - base.Checkpoints; got != 1 {
		t.Errorf("Checkpoints moved by %d, want 1", got)
	}
	if got := m.SnapshotsTaken - base.SnapshotsTaken; got != 1 {
		t.Errorf("SnapshotsTaken moved by %d, want 1", got)
	}
	if m.SnapshotsActive != base.SnapshotsActive+1 {
		t.Errorf("SnapshotsActive = %d, want %d", m.SnapshotsActive, base.SnapshotsActive+1)
	}
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().SnapshotsActive; got != base.SnapshotsActive {
		t.Errorf("SnapshotsActive after release = %d, want %d", got, base.SnapshotsActive)
	}
	_ = ids
}

// TestMetricsPoolDisabled: without a buffer pool the Pool block is zero and
// flagged off, and Metrics stays callable after Close.
func TestMetricsPoolDisabled(t *testing.T) {
	db, _ := paperDB(t)
	m := db.Metrics()
	if m.PoolEnabled {
		t.Fatal("PoolEnabled true for a pool-less database")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	after := db.Metrics()
	if after.Queries != m.Queries {
		t.Fatalf("Queries changed across Close: %d → %d", m.Queries, after.Queries)
	}
	if after.SnapshotsActive != 0 {
		t.Fatalf("SnapshotsActive = %d after Close", after.SnapshotsActive)
	}
}

// TestQueryParallelCancellation pins the pool's drain behavior: canceling
// the batch context makes in-flight jobs abort and every remaining job
// return ctx's error without executing, so the call returns promptly even
// for a long queue. Run with -race.
func TestQueryParallelCancellation(t *testing.T) {
	db, _ := paperDB(t)
	// Fatten the index so each full-range job scans real work and the
	// batch cannot outrun the cancel below.
	for i := 0; i < 1500; i++ {
		if _, err := db.Insert("Truck", Attrs{
			"Name": fmt.Sprintf("T%04d", i), "Color": fmt.Sprintf("C%04d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const jobsN = 2048
	jobs := make([]QueryJob, jobsN)
	for i := range jobs {
		jobs[i] = QueryJob{Index: "color", Query: Query{Value: Range("A", "z")}}
	}
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()

	t0 := time.Now()
	results := db.QueryParallel(ctx, jobs, 4)
	elapsed := time.Since(t0)

	if len(results) != jobsN {
		t.Fatalf("got %d results, want %d", len(results), jobsN)
	}
	canceled := 0
	for i, r := range results {
		if r.Err == nil {
			continue // completed before the cancel landed
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
		canceled++
	}
	if canceled == 0 {
		t.Skip("batch completed before cancellation; nothing to assert")
	}
	// Prompt return: a drained 2048-job queue must not take the time the
	// full batch would.
	if elapsed > 5*time.Second {
		t.Fatalf("QueryParallel took %v after cancellation", elapsed)
	}
	t.Logf("canceled %d/%d jobs in %v", canceled, jobsN, elapsed)
}

// TestCloseReleasesSnapshots is the session-lifecycle pin: Close while
// snapshots are held (and queried concurrently) must release every pin,
// surface only the typed sentinels, and never panic.
func TestCloseReleasesSnapshots(t *testing.T) {
	db, _ := paperDB(t)
	ctx := context.Background()

	const holders = 6
	snaps := make([]*Snapshot, holders)
	for i := range snaps {
		s, err := db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = s
	}
	if got := db.Metrics().SnapshotsActive; got != holders {
		t.Fatalf("SnapshotsActive = %d, want %d", got, holders)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, s := range snaps {
		wg.Add(1)
		go func(s *Snapshot) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := s.Query(ctx, "color", Query{Value: Exact("Red")})
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrSnapshotReleased) && !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected error class: %v", err)
				}
				return
			}
		}(s)
	}
	time.Sleep(5 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatalf("Close with held snapshots: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := db.Metrics().SnapshotsActive; got != 0 {
		t.Fatalf("SnapshotsActive = %d after Close, want 0 (epoch pins leaked)", got)
	}
	// Everything stays well-typed after the fact.
	if _, _, err := snaps[0].Query(ctx, "color", Query{Value: Exact("Red")}); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("post-Close snapshot query = %v, want ErrSnapshotReleased", err)
	}
	if err := snaps[0].Release(); err != nil {
		t.Fatalf("redundant Release after Close: %v", err)
	}
	if _, err := db.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
