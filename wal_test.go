package uindex

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// walOpts is the WAL test baseline: background checkpointing disabled so
// every test controls exactly when the log folds into the checkpoints.
func walOpts(dir string) Options {
	return Options{Dir: dir, PoolPages: 16, Durability: DurabilityWAL, WALCheckpointBytes: -1}
}

// copyDirTo snapshots every file of a live database directory — the state a
// crash at this instant would leave on disk (the log and manifests are
// written with WriteAt+Sync, so the on-disk bytes are the durable state).
func copyDirTo(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashImage copies the live directory into a fresh TempDir.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyDirTo(t, src, dst)
	return dst
}

// dumpIndexKeys collects every key of every shard of one index, in shard
// order — the byte-level content two recoveries must agree on.
func dumpIndexKeys(t *testing.T, db *Database, name string) []string {
	t.Helper()
	g, ok := db.groups[name]
	if !ok {
		t.Fatalf("no index %q", name)
	}
	var keys []string
	for i := 0; i < g.sharded.NumShards(); i++ {
		err := g.sharded.Shard(i).Tree().Scan(context.Background(), nil, nil, nil,
			func(key, val []byte) ([]byte, bool, error) {
				keys = append(keys, fmt.Sprintf("%d/%x", i, key))
				return nil, false, nil
			})
		if err != nil {
			t.Fatalf("scanning %q shard %d: %v", name, i, err)
		}
	}
	return keys
}

func countRed(t *testing.T, db *Database) int {
	t.Helper()
	ms, _, err := db.Query(context.Background(), "color", redQuery())
	if err != nil {
		t.Fatal(err)
	}
	return len(ms)
}

// TestWALRoundTrip: a WAL database survives a clean Close/Open cycle; the
// final checkpoint on Close means Open replays nothing.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	oids := insertVehicles(t, db, testColors)
	if err := db.Set(oids[1], "Color", "Red"); err != nil { // White -> Red
		t.Fatal(err)
	}
	if err := db.Delete(oids[0]); err != nil { // drop a Red
		t.Fatal(err)
	}
	m := db.Metrics()
	if !m.WALEnabled || m.WALAppends != uint64(len(testColors))+2 {
		t.Fatalf("WALEnabled=%v WALAppends=%d, want true/%d", m.WALEnabled, m.WALAppends, len(testColors)+2)
	}
	wantRed := countRed(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRed(t, db2); got != wantRed {
		t.Fatalf("recovered red count = %d, want %d", got, wantRed)
	}
	m2 := db2.Metrics()
	if m2.WALRecoveryReplayed != 0 {
		t.Fatalf("clean close still replayed %d records", m2.WALRecoveryReplayed)
	}
	if o, ok := db2.Get(oids[1]); !ok || o.Attrs()["Color"] != "Red" {
		t.Fatalf("Get(%d) = %v, %v; want Color=Red", oids[1], o, ok)
	}
	if _, ok := db2.Get(oids[0]); ok {
		t.Fatalf("deleted object %d resurrected", oids[0])
	}
}

// TestWALCrashRecovery: mutations acknowledged by the commit path are fully
// recovered from a crash image — no Close, no Checkpoint, just the log.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	oids := insertVehicles(t, db, testColors)
	if err := db.Set(oids[3], "Color", "Red"); err != nil { // Blue -> Red
		t.Fatal(err)
	}
	if err := db.Delete(oids[5]); err != nil { // drop a Red
		t.Fatal(err)
	}
	// A batch rides the same log.
	b := new(Batch)
	b.Insert("Automobile", Attrs{"Color": "Red"}).Set(oids[4], "Color", "Red")
	if _, err := db.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	wantRed := countRed(t, db)
	wantKeys := dumpIndexKeys(t, db, "color")

	img := crashImage(t, dir)
	rec, err := Open(img, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := countRed(t, rec); got != wantRed {
		t.Fatalf("recovered red count = %d, want %d", got, wantRed)
	}
	gotKeys := dumpIndexKeys(t, rec, "color")
	if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
		t.Fatalf("recovered index keys differ:\n got %v\nwant %v", gotKeys, wantKeys)
	}
	m := rec.Metrics()
	if m.WALRecoveryReplayed == 0 {
		t.Fatal("crash image recovered without replaying any log records")
	}
	for _, oid := range oids[:5] {
		want, wok := db.Get(oid)
		got, gok := rec.Get(oid)
		if wok != gok {
			t.Fatalf("Get(%d) presence: live %v, recovered %v", oid, wok, gok)
		}
		if wok && want.Attrs()["Color"] != got.Attrs()["Color"] {
			t.Fatalf("Get(%d) Color: live %v, recovered %v", oid, want.Attrs()["Color"], got.Attrs()["Color"])
		}
	}
}

// TestWALCheckpointThenCrash: mutations after an incremental checkpoint are
// recovered by replaying only the suffix beyond the checkpoint LSN.
func TestWALCheckpointThenCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, testColors)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, []string{"Red", "Green"})
	wantRed := countRed(t, db)

	img := crashImage(t, dir)
	rec, err := Open(img, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := countRed(t, rec); got != wantRed {
		t.Fatalf("recovered red count = %d, want %d", got, wantRed)
	}
	if m := rec.Metrics(); m.WALRecoveryReplayed != 2 {
		t.Fatalf("replayed %d records, want exactly the 2 post-checkpoint inserts", m.WALRecoveryReplayed)
	}
}

// TestWALRecoveryIdempotent: replaying the same log suffix a second time
// over an already-recovered database leaves the indexes byte-identical and
// the store unchanged — the property that lets recovery crash and rerun.
func TestWALRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	oids := insertVehicles(t, db, testColors)
	if err := db.Set(oids[1], "Color", "Blue"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(oids[2]); err != nil {
		t.Fatal(err)
	}

	img := crashImage(t, dir)
	rec, err := Open(img, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	once := dumpIndexKeys(t, rec, "color")
	onceRed := countRed(t, rec)

	// Replay the identical suffix again, straight through the recovery path.
	cut := rec.wal.manifest.WALLSN()
	var again uint64
	err = rec.wal.log.Replay(cut, func(lsn uint64, payload []byte) error {
		again++
		return rec.walReplayRecord(payload)
	})
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if again != rec.Metrics().WALRecoveryReplayed {
		t.Fatalf("second replay saw %d records, first saw %d", again, rec.Metrics().WALRecoveryReplayed)
	}
	twice := dumpIndexKeys(t, rec, "color")
	if fmt.Sprint(once) != fmt.Sprint(twice) {
		t.Fatalf("double replay changed the index:\n once %v\ntwice %v", once, twice)
	}
	if got := countRed(t, rec); got != onceRed {
		t.Fatalf("double replay changed red count: %d -> %d", onceRed, got)
	}
	for _, oid := range oids {
		if _, ok := rec.Get(oid); ok != (oid != oids[2]) {
			t.Fatalf("Get(%d) after double replay = %v", oid, ok)
		}
	}
}

// TestWALRecoveryErrors: every way a recovery can fail — damaged manifest,
// damaged log preamble, damaged store snapshot, damaged index checkpoint —
// surfaces as ErrRecovery, with pager corruption still reachable through
// errors.Is/As.
func TestWALRecoveryErrors(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, testColors)
	if err := db.Checkpoint(); err != nil { // give the index file content
		t.Fatal(err)
	}
	insertVehicles(t, db, []string{"Red"}) // leave a log tail too
	img := t.TempDir()
	copyDirTo(t, dir, img)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, name string, mangle func([]byte) []byte) string {
		t.Helper()
		d := t.TempDir()
		copyDirTo(t, img, d)
		p := filepath.Join(d, name)
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, mangle(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		return d
	}
	wantRecovery := func(t *testing.T, d string) error {
		t.Helper()
		rec, err := Open(d, Options{PoolPages: 16, WALCheckpointBytes: -1})
		if err == nil {
			rec.Close()
			t.Fatal("Open succeeded on corrupt directory")
		}
		if !errors.Is(err, ErrRecovery) {
			t.Fatalf("Open = %v, want ErrRecovery in the chain", err)
		}
		return err
	}

	t.Run("manifest", func(t *testing.T) {
		wantRecovery(t, corrupt(t, "db.manifest", func(raw []byte) []byte { return raw[:16] }))
	})
	t.Run("log", func(t *testing.T) {
		wantRecovery(t, corrupt(t, "wal.log", func(raw []byte) []byte {
			raw[0] ^= 0xFF // break the magic
			return raw
		}))
	})
	t.Run("snapshot", func(t *testing.T) {
		snaps, err := filepath.Glob(filepath.Join(img, "store.*.snap"))
		if err != nil || len(snaps) != 1 {
			t.Fatalf("store snapshots in image: %v, %v", snaps, err)
		}
		wantRecovery(t, corrupt(t, filepath.Base(snaps[0]), func(raw []byte) []byte {
			return raw[:len(raw)/2]
		}))
	})
	t.Run("index", func(t *testing.T) {
		// Flip a payload byte in every page slot after the header: whatever
		// page the reopen touches fails its checksum. The pager-level cause
		// must survive the ErrRecovery wrapping.
		err := wantRecovery(t, corrupt(t, "color.uidx", func(raw []byte) []byte {
			const slotSize = 1024 + 12
			for off := slotSize + 50; off < len(raw); off += slotSize {
				raw[off] ^= 0xFF
			}
			return raw
		}))
		var cp ErrCorruptPage
		if !errors.Is(err, ErrCorruptFile) && !errors.As(err, &cp) {
			t.Fatalf("index corruption lost its pager cause: %v", err)
		}
	})
	t.Run("missing log", func(t *testing.T) {
		d := t.TempDir()
		copyDirTo(t, img, d)
		if err := os.Remove(filepath.Join(d, "wal.log")); err != nil {
			t.Fatal(err)
		}
		wantRecovery(t, d)
	})
}

// TestWALBootstrapRules: DurabilityWAL requires a directory, and a directory
// already holding a WAL database must go through Open, not NewDatabaseWith.
func TestWALBootstrapRules(t *testing.T) {
	if _, err := NewDatabaseWith(vehicleSchema(t), Options{Durability: DurabilityWAL}); err == nil {
		t.Fatal("DurabilityWAL without Dir accepted")
	}
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir)); err == nil ||
		!strings.Contains(err.Error(), "Open") {
		t.Fatalf("re-bootstrap over an existing WAL database = %v, want refusal pointing at Open", err)
	}
}

// TestWALCloseLeakFree: the group-commit daemon and background checkpointer
// shut down on Close without leaking goroutines, for both the bootstrap and
// the recovery path — including when the background checkpointer is enabled.
func TestWALCloseLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	opts := Options{Dir: dir, PoolPages: 16, Durability: DurabilityWAL, WALCheckpointBytes: 1} // checkpointer hot
	db, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, testColors)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db2, testColors)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after Close: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWALGroupCommitCoalesces: concurrent committers share fsyncs — the
// whole point of group commit. fsyncs/commit must come out below 1.
func TestWALGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts(dir)
	opts.WALMaxDelay = 500 * time.Microsecond
	db, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Insert("Automobile", Attrs{"Color": "Red"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	m := db.Metrics()
	if m.WALAppends != writers*per {
		t.Fatalf("WALAppends = %d, want %d", m.WALAppends, writers*per)
	}
	if m.WALFsyncs >= m.WALAppends {
		t.Fatalf("fsyncs/commit = %d/%d >= 1: group commit not amortizing", m.WALFsyncs, m.WALAppends)
	}
	t.Logf("appends=%d fsyncs=%d batches=%d", m.WALAppends, m.WALFsyncs, m.WALBatches)
}

// TestWALWritersProgressDuringCheckpoint: the incremental checkpoint holds
// only one shard lock at a time plus a brief store cut, so writers commit
// while a checkpoint is in flight. Run under -race this is also the data-race
// proof for the whole WAL commit/checkpoint interplay.
func TestWALWritersProgressDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts(dir)
	opts.Shards = 4
	db, err := NewDatabaseWith(vehicleSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	// Preload so every store snapshot inside a checkpoint takes real time.
	preload := make([]string, 800)
	for i := range preload {
		preload[i] = "White"
	}
	insertVehicles(t, db, preload)

	var (
		ckptActive atomic.Bool
		overlap    atomic.Int64 // inserts completed while a checkpoint ran
		stop       atomic.Bool
		inserted   atomic.Int64
	)
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := db.Insert("Automobile", Attrs{"Color": "Red"}); err != nil {
					t.Error(err)
					return
				}
				inserted.Add(1)
				if ckptActive.Load() {
					overlap.Add(1)
				}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	ckpts := 0
	for overlap.Load() == 0 || ckpts < 3 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("no insert completed during %d checkpoints (inserted %d total)", ckpts, inserted.Load())
		}
		ckptActive.Store(true)
		err := db.Checkpoint()
		ckptActive.Store(false)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("checkpoint %d: %v", ckpts, err)
		}
		ckpts++
	}
	stop.Store(true)
	wg.Wait()
	t.Logf("checkpoints=%d inserts=%d overlapping=%d", ckpts, inserted.Load(), overlap.Load())

	indexLen := func(db *Database) int {
		stats, ok := db.ShardStats("color")
		if !ok {
			t.Fatal("no color index")
		}
		n := 0
		for _, s := range stats {
			n += s.Entries
		}
		return n
	}
	total := int(inserted.Load()) + 800
	if got := indexLen(db); got != total {
		t.Fatalf("live index has %d entries, want %d", got, total)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := indexLen(rec); got != total {
		t.Fatalf("recovered index has %d entries, want %d", got, total)
	}
}

// TestWALDropCreateIndexRecovers: catalog changes checkpoint immediately, so
// a crash right after DropIndex/CreateIndex recovers the new catalog, and
// log records for a dropped index never damage recovery.
func TestWALDropCreateIndexRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDatabaseWith(vehicleSchema(t), walOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, testColors)
	if err := db.DropIndex("color"); err != nil {
		t.Fatal(err)
	}
	insertVehicles(t, db, []string{"Red"}) // logged with no covering index

	img := crashImage(t, dir)
	rec, err := Open(img, Options{PoolPages: 16, WALCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Indexes(); len(got) != 0 {
		t.Fatalf("dropped index survived recovery: %v", got)
	}
	// Re-attach re-reads the orphaned checkpoint file, then Build is not
	// run — entries must equal the pre-drop checkpointed state.
	if err := rec.CreateIndex(colorSpec); err != nil {
		t.Fatal(err)
	}
	if got := countRed(t, rec); got != 3 {
		t.Fatalf("re-attached index sees %d red, want the 3 from before the drop", got)
	}
}
