package uindex

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotReadIsolation: a snapshot taken before a write never observes
// it, while direct queries see the new state immediately.
func TestSnapshotReadIsolation(t *testing.T) {
	db, ids := paperDB(t)
	ctx := context.Background()
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	redBefore, _, err := snap.Query(ctx, "color", Query{Value: Exact("Red")})
	if err != nil {
		t.Fatal(err)
	}

	// Mutate after the snapshot: new red vehicle, deleted red vehicle,
	// recolored vehicle.
	if _, err := db.Insert("Truck", Attrs{"Name": "Hauler", "Color": "Red"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(ids["v4"]); err != nil {
		t.Fatal(err)
	}
	if err := db.Set(ids["v1"], "Color", "Red"); err != nil {
		t.Fatal(err)
	}

	// The snapshot still answers from the pinned version.
	redAfter, _, err := snap.Query(ctx, "color", Query{Value: Exact("Red")})
	if err != nil {
		t.Fatal(err)
	}
	if len(redAfter) != len(redBefore) {
		t.Fatalf("snapshot red count changed %d → %d after writes", len(redBefore), len(redAfter))
	}
	// WithSnapshot routes a Database.Query through the same pinned view.
	viaOpt, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")}, WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(viaOpt) != len(redBefore) {
		t.Fatalf("WithSnapshot red count = %d, want %d", len(viaOpt), len(redBefore))
	}
	// A direct query sees the post-write state (2 seed reds − v4 + insert + recolor = 3).
	live, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 3 {
		t.Fatalf("live red count = %d, want 3", len(live))
	}

	// Released snapshots refuse queries with the sentinel.
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Query(ctx, "color", Query{Value: Exact("Red")}); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("query after release = %v, want ErrSnapshotReleased", err)
	}
	if _, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")}, WithSnapshot(snap)); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("WithSnapshot after release = %v, want ErrSnapshotReleased", err)
	}
}

func TestSnapshotMetadata(t *testing.T) {
	db, _ := paperDB(t)
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if got := snap.Indexes(); len(got) != 2 || got[0] != "color" || got[1] != "age" {
		t.Fatalf("Indexes = %v", got)
	}
	if _, ok := snap.Epoch("color"); !ok {
		t.Error("Epoch(color) not covered")
	}
	if _, ok := snap.Epoch("nope"); ok {
		t.Error("Epoch of unknown index covered")
	}
	if _, _, err := snap.Query(context.Background(), "nope", Query{Value: Exact("Red")}); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("unknown index via snapshot = %v, want ErrIndexNotFound", err)
	}
}

// TestSentinelErrors: the exported sentinels match through errors.Is on
// every path that documents them.
func TestSentinelErrors(t *testing.T) {
	db, ids := paperDB(t)
	ctx := context.Background()

	if _, _, err := db.Query(ctx, "nope", Query{Value: Exact("Red")}); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("Query unknown index = %v, want ErrIndexNotFound", err)
	}
	if err := db.DropIndex("nope"); !errors.Is(err, ErrIndexNotFound) {
		t.Fatalf("DropIndex unknown index = %v, want ErrIndexNotFound", err)
	}
	if _, err := db.Insert("Ghost", Attrs{"X": 1}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Insert unknown class = %v, want ErrUnknownClass", err)
	}

	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrInvalidSnapshot) {
		t.Fatalf("Load garbage = %v, want ErrInvalidSnapshot", err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mangled := buf.Bytes()
	mangled[7] = 99 // snapshot format version
	if _, err := Load(bytes.NewReader(mangled)); !errors.Is(err, ErrInvalidSnapshot) {
		t.Fatalf("Load bad version = %v, want ErrInvalidSnapshot", err)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query closed = %v, want ErrClosed", err)
	}
	if _, err := db.Insert("Employee", Attrs{"Age": 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert closed = %v, want ErrClosed", err)
	}
	if err := db.Delete(ids["v1"]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete closed = %v, want ErrClosed", err)
	}
	if err := db.Set(ids["v1"], "Color", "Red"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set closed = %v, want ErrClosed", err)
	}
	if err := db.CreateIndex(IndexSpec{Name: "x", Root: "Vehicle", Attr: "Color"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateIndex closed = %v, want ErrClosed", err)
	}
	if _, err := db.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot closed = %v, want ErrClosed", err)
	}
	results := db.QueryParallel(ctx, []QueryJob{{Index: "color", Query: Query{Value: Exact("Red")}}}, 1)
	if !errors.Is(results[0].Err, ErrClosed) {
		t.Fatalf("QueryParallel closed = %v, want ErrClosed", results[0].Err)
	}
}

// TestQueryContextCancellation: a canceled context aborts queries on every
// surface.
func TestQueryContextCancellation(t *testing.T) {
	db, _ := paperDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query canceled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := db.Query(ctx, "color", Query{Value: Exact("Red")}, WithAlgorithm(Forward)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Forward query canceled ctx = %v, want context.Canceled", err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if _, _, err := snap.Query(ctx, "color", Query{Value: Exact("Red")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("snapshot query canceled ctx = %v, want context.Canceled", err)
	}
	results := db.QueryParallel(ctx, []QueryJob{{Index: "color", Query: Query{Value: Exact("Red")}}}, 1)
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("QueryParallel canceled ctx = %v, want context.Canceled", results[0].Err)
	}
}

// TestWritersDoNotBlockReadersOrEachOther pins the locking design
// deterministically: while one index's write lock is held, (a) queries on
// that index still complete (readers never wait on writers) and (b) a write
// covered only by a different index still completes.
func TestWritersDoNotBlockReadersOrEachOther(t *testing.T) {
	s := NewSchema()
	if err := s.AddClass("A", "", Attr{Name: "X", Type: Uint64}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("B", "", Attr{Name: "Y", Type: Uint64}); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(IndexSpec{Name: "ax", Root: "A", Attr: "X"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(IndexSpec{Name: "by", Root: "B", Attr: "Y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("A", Attrs{"X": uint64(1)}); err != nil {
		t.Fatal(err)
	}

	// Simulate a stalled writer on index "ax" by holding its write lock.
	ax, ok := db.Index("ax")
	if !ok {
		t.Fatal("index ax missing")
	}
	ax.LockWrite()
	defer ax.UnlockWrite()

	done := make(chan error, 2)
	go func() { // reader on the write-locked index
		_, _, err := db.Query(context.Background(), "ax", Query{Value: Exact(uint64(1))})
		done <- err
	}()
	go func() { // writer on the other index
		_, err := db.Insert("B", Attrs{"Y": uint64(7)})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotPageAccountingInvariance: logical page-read counts are a
// property of the pinned tree version, so the same query reports identical
// Stats through a snapshot and directly, and identical counts on a snapshot
// before and after unrelated writes move the live tree on.
func TestSnapshotPageAccountingInvariance(t *testing.T) {
	db, _ := paperDB(t)
	ctx := context.Background()
	q := Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}
	for _, alg := range []Algorithm{Parallel, Forward} {
		snap, err := db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		_, direct, err := db.Query(ctx, "color", q, WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		_, snapped, err := snap.Query(ctx, "color", q, WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		if direct.PagesRead != snapped.PagesRead || direct.Matches != snapped.Matches {
			t.Fatalf("alg %v: direct %+v vs snapshot %+v", alg, direct, snapped)
		}
		// Writes after the snapshot do not change its accounting.
		if _, err := db.Insert("Vehicle", Attrs{"Name": "N", "Color": "Red"}); err != nil {
			t.Fatal(err)
		}
		_, again, err := snap.Query(ctx, "color", q, WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		if again.PagesRead != snapped.PagesRead || again.Matches != snapped.Matches {
			t.Fatalf("alg %v: snapshot accounting drifted %+v → %+v", alg, snapped, again)
		}
		snap.Release()
	}
}

// TestMixedWorkloadStress is the race-enabled stress test of the acceptance
// criteria: writers keep committing while Snapshot readers and direct
// queries run. Each snapshot reader asserts its view is frozen (identical
// match count on repeated queries); direct readers only assert success.
func TestMixedWorkloadStress(t *testing.T) {
	db, _ := paperDB(t)
	ctx := context.Background()
	colors := []string{"Red", "Blue", "White", "Green", "Black"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two writers: one inserting vehicles (hits both indexes), one
	// inserting employees (hits only the age index's terminal class).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if w == 0 {
					_, err = db.Insert(classes[i%len(classes)], Attrs{
						"Name": fmt.Sprintf("w%d-%d", w, i), "Color": colors[i%len(colors)]})
				} else {
					_, err = db.Insert("Employee", Attrs{"Age": uint64(20 + i%50)})
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for k := 0; k < 25; k++ {
				snap, err := db.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				q := Query{Value: Exact(colors[(r+k)%len(colors)]), Positions: []Position{On("Vehicle")}}
				first, _, err := snap.Query(ctx, "color", q)
				if err != nil {
					t.Error(err)
				}
				second, _, err := snap.Query(ctx, "color", q)
				if err != nil {
					t.Error(err)
				}
				if len(first) != len(second) {
					t.Errorf("snapshot not frozen: %d then %d matches", len(first), len(second))
				}
				if _, _, err := db.Query(ctx, "age", Query{Value: Range(uint64(20), uint64(70))}); err != nil {
					t.Error(err)
				}
				if err := snap.Release(); err != nil {
					t.Error(err)
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
