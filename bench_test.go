package uindex

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out.
// The full paper-scale sweeps (150,000 objects, 100 repetitions) live in
// cmd/uindexbench; the benchmarks here exercise the same code paths at a
// size that keeps `go test -bench=.` responsive.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cgtree"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nix"
	"repro/internal/pager"
	"repro/internal/workload"
)

// ---- shared fixtures -------------------------------------------------

var (
	largeOnce sync.Once
	largeDBs  map[int]*workload.LargeDB // by distinct-key count (0 = unique)
	largeErr  error

	table1Once sync.Once
	table1DB   *workload.Figure1DB
	table1Col  *core.Index
	table1Age  *core.Index
	table1Err  error
)

const benchObjects = 30000

func getLargeDB(b *testing.B, keys int) *workload.LargeDB {
	b.Helper()
	largeOnce.Do(func() {
		largeDBs = map[int]*workload.LargeDB{}
		for _, k := range []int{0, 100, 1000} {
			db, err := workload.NewLargeDB(workload.LargeConfig{
				Objects: benchObjects, Sets: 40, Keys: k, Seed: 1996})
			if err != nil {
				largeErr = err
				return
			}
			largeDBs[k] = db
		}
	})
	if largeErr != nil {
		b.Fatal(largeErr)
	}
	return largeDBs[keys]
}

func getTable1(b *testing.B) (*workload.Figure1DB, *core.Index, *core.Index) {
	b.Helper()
	table1Once.Do(func() {
		table1DB, table1Err = workload.NewFigure1DB(42)
		if table1Err != nil {
			return
		}
		table1Col, table1Err = core.New(pager.NewMemFile(1024), table1DB.Store, core.Spec{
			Name: "color", Root: "Vehicle", Attr: "Color", MaxEntries: 10})
		if table1Err != nil {
			return
		}
		if table1Err = table1Col.Build(); table1Err != nil {
			return
		}
		table1Age, table1Err = core.New(pager.NewMemFile(1024), table1DB.Store, core.Spec{
			Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"},
			Attr: "Age", MaxEntries: 10})
		if table1Err != nil {
			return
		}
		table1Err = table1Age.Build()
	})
	if table1Err != nil {
		b.Fatal(table1Err)
	}
	return table1DB, table1Col, table1Age
}

func setPosition(db *workload.LargeDB, sets []int) core.Position {
	pos := core.Position{}
	for _, s := range sets {
		pos.Alts = append(pos.Alts, core.ClassPattern{Class: db.Sets[s]})
	}
	return pos
}

// ---- read path -------------------------------------------------------

var (
	queryBenchMu  sync.Mutex
	queryBenchDBs = map[int]*Database{}
)

// benchQueryDB builds (once per cache setting) the vehicle database the
// read-path benchmarks query: a color class-hierarchy index and a
// two-ref age path index over a few thousand objects.
func benchQueryDB(b *testing.B, ncache int) *Database {
	b.Helper()
	queryBenchMu.Lock()
	defer queryBenchMu.Unlock()
	if db, ok := queryBenchDBs[ncache]; ok {
		return db
	}
	s := NewSchema()
	steps := []func() error{
		func() error { return s.AddClass("Employee", "", Attr{Name: "Age", Type: Uint64}) },
		func() error {
			return s.AddClass("Company", "", Attr{Name: "Name", Type: String}, Attr{Name: "President", Ref: "Employee"})
		},
		func() error {
			return s.AddClass("Vehicle", "", Attr{Name: "Color", Type: String}, Attr{Name: "ManufacturedBy", Ref: "Company"})
		},
		func() error { return s.AddClass("Automobile", "Vehicle") },
		func() error { return s.AddClass("Truck", "Vehicle") },
		func() error { return s.AddClass("CompactAutomobile", "Automobile") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	db, err := NewDatabaseWith(s, Options{NodeCacheSize: ncache})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1996))
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}
	var employees, companies []OID
	for i := 0; i < 300; i++ {
		oid, err := db.Insert("Employee", Attrs{"Age": uint64(30 + rng.Intn(40))})
		if err != nil {
			b.Fatal(err)
		}
		employees = append(employees, oid)
	}
	for i := 0; i < 150; i++ {
		oid, err := db.Insert("Company", Attrs{
			"Name": fmt.Sprintf("Co-%04d", i), "President": employees[rng.Intn(len(employees))]})
		if err != nil {
			b.Fatal(err)
		}
		companies = append(companies, oid)
	}
	if err := db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex(IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if _, err := db.Insert(classes[rng.Intn(len(classes))], Attrs{
			"Color":          colors[rng.Intn(len(colors))],
			"ManufacturedBy": companies[rng.Intn(len(companies))],
		}); err != nil {
			b.Fatal(err)
		}
	}
	queryBenchDBs[ncache] = db
	return db
}

// benchQuery runs one facade query per op under both cache settings —
// allocs/op with cache=on vs. cache=off is the tentpole's headline number.
func benchQuery(b *testing.B, index string, q Query) {
	b.Helper()
	for _, tc := range []struct {
		name   string
		ncache int
	}{
		{"cache=on", 0},
		{"cache=off", -1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchQueryDB(b, tc.ncache)
			ctx := context.Background()
			// Warm up: steady state is the repeated-query regime.
			if _, _, err := db.Query(ctx, index, q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query(ctx, index, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryExact is the repeated exact-match probe of the acceptance
// criterion: exact value on an exact class.
func BenchmarkQueryExact(b *testing.B) {
	benchQuery(b, "color", Query{
		Value:     Exact("Red"),
		Positions: []Position{OnExact("Automobile")},
	})
}

// BenchmarkQueryRange scans a value range over the whole hierarchy.
func BenchmarkQueryRange(b *testing.B) {
	benchQuery(b, "color", Query{
		Value:     Range("Black", "Red"),
		Positions: []Position{On("Vehicle")},
	})
}

// BenchmarkQuerySubtree probes the path index restricted to a class
// subtree at the path's end.
func BenchmarkQuerySubtree(b *testing.B) {
	benchQuery(b, "age", Query{
		Value:     Exact(uint64(45)),
		Positions: []Position{Any, Any, On("Automobile")},
	})
}

// BenchmarkQueryParscan is a dispersed multi-interval descent — the
// paper's Algorithm 1 showcase (several values × several class subtrees
// in one tree pass).
func BenchmarkQueryParscan(b *testing.B) {
	benchQuery(b, "color", Query{
		Value:     OneOf("Red", "Blue", "Green"),
		Positions: []Position{OneOfClasses("CompactAutomobile", "Truck")},
	})
}

// ---- Table 1 ---------------------------------------------------------

// BenchmarkTable1 regenerates the Table-1 query mix: class-hierarchy
// simple and range queries on the 12,000-record Figure-1 database, under
// both retrieval algorithms.
func BenchmarkTable1(b *testing.B) {
	_, col, age := getTable1(b)
	queries := []struct {
		name string
		ix   *core.Index
		q    core.Query
	}{
		{"q1a-red-buses", col, core.Query{Value: core.Exact("Red"), Positions: []core.Position{core.On("Bus")}}},
		{"q2a-red-passenger-buses", col, core.Query{Value: core.Exact("Red"), Positions: []core.Position{core.On("PassengerBus")}}},
		{"q3c-3color-automobiles", col, core.Query{Value: core.OneOf("Red", "Blue", "Green"), Positions: []core.Position{core.On("Automobile")}}},
		{"q4a-dispersed-classes", col, core.Query{Value: core.Exact("Red"), Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto")}}},
		{"q5a-distinct-companies", age, core.Query{Value: core.Exact(50), Distinct: 2}},
		{"q6a-combined", age, core.Query{Value: core.Range(51, nil), Positions: []core.Position{core.Any, core.On("AutoCompany"), core.On("Automobile")}}},
	}
	for _, alg := range []core.Algorithm{core.Parallel, core.Forward} {
		for _, tc := range queries {
			b.Run(fmt.Sprintf("%s/%s", alg, tc.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := tc.ix.Execute(tc.q, alg, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Figures 5-8 -----------------------------------------------------

// benchPoint runs one (structure, keys, #sets, range-fraction) point.
func benchPoint(b *testing.B, keys, nSets int, frac float64) {
	db := getLargeDB(b, keys)
	rng := rand.New(rand.NewSource(7))
	domain := db.KeyDomain()
	width := max(1, int(frac*float64(domain)))
	b.Run("U-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := uint64(rng.Intn(domain - width + 1))
			sets := workload.QueriedSets(40, nSets, i%2 == 0, rng)
			var vp core.ValuePred
			switch {
			case frac == 0:
				vp = core.Exact(lo)
			case keys > 0:
				vp = core.Uint64Range(lo, lo+uint64(width)-1)
			default:
				vp = core.Range(lo, lo+uint64(width)-1)
			}
			q := core.Query{Value: vp, Positions: []core.Position{setPosition(db, sets)}}
			if _, _, err := db.UIndex.Execute(q, core.Parallel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CG-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := uint64(rng.Intn(domain - width + 1))
			sets := workload.QueriedSets(40, nSets, false, rng)
			ids := make([]cgtree.SetID, len(sets))
			for j, s := range sets {
				ids[j] = cgtree.SetID(s)
			}
			var err error
			if frac == 0 {
				_, _, err = db.CG.ExactMatch(workload.Key8(lo), ids, nil)
			} else {
				_, _, err = db.CG.RangeQuery(workload.Key8(lo), workload.Key8(lo+uint64(width)-1), ids, nil)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5 regenerates Figure 5 (exact match) at the key/set grid.
func BenchmarkFig5(b *testing.B) {
	for _, keys := range []int{0, 100, 1000} {
		for _, nSets := range []int{1, 20, 40} {
			b.Run(fmt.Sprintf("keys=%d/sets=%d", keys, nSets), func(b *testing.B) {
				benchPoint(b, keys, nSets, 0)
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (10% range).
func BenchmarkFig6(b *testing.B) {
	for _, keys := range []int{0, 1000} {
		for _, nSets := range []int{1, 40} {
			b.Run(fmt.Sprintf("keys=%d/sets=%d", keys, nSets), func(b *testing.B) {
				benchPoint(b, keys, nSets, 0.10)
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (2% range).
func BenchmarkFig7(b *testing.B) {
	for _, nSets := range []int{1, 40} {
		b.Run(fmt.Sprintf("keys=1000/sets=%d", nSets), func(b *testing.B) {
			benchPoint(b, 1000, nSets, 0.02)
		})
	}
}

// BenchmarkFig8 regenerates Figure 8 (0.5% and 0.2% ranges, 1000 keys).
func BenchmarkFig8(b *testing.B) {
	for _, frac := range []float64{0.005, 0.002} {
		for _, nSets := range []int{1, 40} {
			b.Run(fmt.Sprintf("range=%g%%/sets=%d", frac*100, nSets), func(b *testing.B) {
				benchPoint(b, 1000, nSets, frac)
			})
		}
	}
}

// ---- ablations -------------------------------------------------------

// BenchmarkParallelVsForward isolates the Algorithm-1 ablation: the same
// dispersed-class query under both algorithms.
func BenchmarkParallelVsForward(b *testing.B) {
	_, col, _ := getTable1(b)
	q := core.Query{
		Value:     core.OneOf("Red", "Blue", "Green"),
		Positions: []core.Position{core.OneOfClasses("CompactAutomobile", "ServiceAuto", "MilitaryBus")},
	}
	for _, alg := range []core.Algorithm{core.Parallel, core.Forward} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := col.Execute(q, alg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNIXvsUIndex compares the U-index against the NIX structure on
// the paper's Section-4.4 contrast cases: whole-subtree lookups (NIX's
// strength) and mid-path restrictions (the U-index's stored full path vs
// NIX's per-candidate auxiliary descents).
func BenchmarkNIXvsUIndex(b *testing.B) {
	db, _, age := getTable1(b)
	nixIx, err := nix.New(pager.NewMemFile(1024), db.Store, nix.Spec{
		Name: "nix-age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"})
	if err != nil {
		b.Fatal(err)
	}
	if err := nixIx.Build(); err != nil {
		b.Fatal(err)
	}
	company := db.Companies[0]
	b.Run("subtree-lookup/U-index", func(b *testing.B) {
		q := core.Query{Value: core.Exact(50), Positions: []core.Position{core.Any, core.Any, core.On("Automobile")}}
		for i := 0; i < b.N; i++ {
			if _, _, err := age.Execute(q, core.Parallel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subtree-lookup/NIX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nixIx.Lookup(50, "Automobile", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("midpath-restriction/U-index", func(b *testing.B) {
		q := core.Query{Value: core.Exact(50), Positions: []core.Position{core.Any, core.OnObjects("Company", company)}}
		for i := 0; i < b.N; i++ {
			if _, _, err := age.Execute(q, core.Parallel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("midpath-restriction/NIX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nixIx.LookupRestricted(50, "Vehicle", "Company", []OID{company}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpdates measures the Section-3.5 maintenance paths on the
// Figure-1 database: object insert, president switch (batch diff), delete.
func BenchmarkUpdates(b *testing.B) {
	db, ids := benchPaperDB(b)
	b.Run("insert-vehicle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oid, err := db.Insert("Automobile", Attrs{
				"Name": "bench", "Color": "Grey", "ManufacturedBy": ids["c2"]})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := db.Delete(oid); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("president-switch", func(b *testing.B) {
		pres := []OID{ids["e1"], ids["e2"]}
		for i := 0; i < b.N; i++ {
			if err := db.Set(ids["c2"], "President", pres[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchPaperDB builds the Example-1 database through the facade for the
// update benchmarks, with a few hundred vehicles per company so diffs are
// non-trivial.
func benchPaperDB(b *testing.B) (*Database, map[string]OID) {
	b.Helper()
	s := NewSchema()
	for _, step := range []func() error{
		func() error { return s.AddClass("Employee", "", Attr{Name: "Age", Type: Uint64}) },
		func() error {
			return s.AddClass("Company", "", Attr{Name: "Name", Type: String}, Attr{Name: "President", Ref: "Employee"})
		},
		func() error {
			return s.AddClass("Vehicle", "", Attr{Name: "Name", Type: String},
				Attr{Name: "Color", Type: String}, Attr{Name: "ManufacturedBy", Ref: "Company"})
		},
		func() error { return s.AddClass("Automobile", "Vehicle") },
	} {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	db, err := NewDatabase(s)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex(IndexSpec{Name: "age", Root: "Vehicle",
		Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}); err != nil {
		b.Fatal(err)
	}
	ids := map[string]OID{}
	e1, _ := db.Insert("Employee", Attrs{"Age": 50})
	e2, _ := db.Insert("Employee", Attrs{"Age": 60})
	c2, _ := db.Insert("Company", Attrs{"Name": "Fiat", "President": e1})
	ids["e1"], ids["e2"], ids["c2"] = e1, e2, c2
	for i := 0; i < 300; i++ {
		if _, err := db.Insert("Automobile", Attrs{
			"Name": fmt.Sprintf("V%d", i), "Color": "Red", "ManufacturedBy": c2}); err != nil {
			b.Fatal(err)
		}
	}
	return db, ids
}

// BenchmarkPageSize sweeps the page size for exact-match queries — the
// Section-5.2 point-7 observation that larger pages wash out set-adjacency
// effects.
func BenchmarkPageSize(b *testing.B) {
	for _, pageSize := range []int{512, 1024, 4096} {
		db, err := workload.NewLargeDB(workload.LargeConfig{
			Objects: 10000, Sets: 40, Keys: 1000, Seed: 3, PageSize: pageSize})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		b.Run(fmt.Sprintf("page=%d", pageSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sets := workload.QueriedSets(40, 10, true, rng)
				q := core.Query{Value: core.Exact(uint64(rng.Intn(1000))),
					Positions: []core.Position{setPosition(db, sets)}}
				if _, _, err := db.UIndex.Execute(q, core.Parallel, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBulkLoadVsInsert contrasts the two index-construction paths.
func BenchmarkBulkLoadVsInsert(b *testing.B) {
	db, err := workload.NewFigure1DB(8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := core.New(pager.NewMemFile(1024), db.Store, core.Spec{
				Name: "c", Root: "Vehicle", Attr: "Color"})
			if err != nil {
				b.Fatal(err)
			}
			if err := ix.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := core.New(pager.NewMemFile(1024), db.Store, core.Spec{
				Name: "c", Root: "Vehicle", Attr: "Color"})
			if err != nil {
				b.Fatal(err)
			}
			for _, oid := range db.Vehicles {
				if err := ix.Add(oid); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkExperimentGrids times the full experiment harness entry points
// at quick scale (the paper-scale runs live in cmd/uindexbench).
func BenchmarkExperimentGrids(b *testing.B) {
	cfg := experiments.GridConfig{Objects: 8000, Reps: 3, Seed: 5}
	defer experiments.ResetDBCache()
	b.Run("table1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunTable1(int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunFigure5(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompressionAblation quantifies the Section-4.2 storage claim in
// time as well as space: identical query mixes over a compressed and an
// uncompressed U-index. (RunStorage reports the page-count side.)
func BenchmarkCompressionAblation(b *testing.B) {
	db := getLargeDB(b, 100)
	raw, err := core.New(pager.NewMemFile(1024), db.Store, core.Spec{
		Name: "raw", Root: "Obj", Attr: "Key", NoCompression: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := raw.Build(); err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, ix *core.Index) {
		pages, err := ix.PageCount()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pages), "pages")
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < b.N; i++ {
			sets := workload.QueriedSets(40, 10, true, rng)
			q := core.Query{Value: core.Exact(uint64(rng.Intn(100))),
				Positions: []core.Position{setPosition(db, sets)}}
			if _, _, err := ix.Execute(q, core.Parallel, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("compressed", func(b *testing.B) { report(b, db.UIndex) })
	b.Run("uncompressed", func(b *testing.B) { report(b, raw) })
}
