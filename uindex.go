// Package uindex is the public API of this repository: a working
// object-oriented database engine around the U-index of Gudes, "A Uniform
// Indexing Scheme for Object-Oriented Databases" (ICDE 1996 / Information
// Systems 22(4), 1997).
//
// A Database combines a class schema (with the paper's lexicographic class
// coding), an object store, and any number of U-indexes — each a single
// B+-tree with front-compressed keys that serves uniformly as a
// class-hierarchy index, a path (nested) index, or a combined
// class-hierarchy/path index. Mutations through the Database keep every
// index consistent.
//
// Quick start:
//
//	s := uindex.NewSchema()
//	s.AddClass("Vehicle", "",
//		uindex.Attr{Name: "Color", Type: uindex.String},
//	)
//	s.AddClass("Automobile", "Vehicle")
//	db, _ := uindex.NewDatabase(s)
//	db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"})
//	oid, _ := db.Insert("Automobile", uindex.Attrs{"Color": "Red"})
//	ms, _, _ := db.Query("color", uindex.Query{
//		Value:     uindex.Exact("Red"),
//		Positions: []uindex.Position{uindex.On("Automobile")},
//	})
//
// See examples/ for runnable programs covering the paper's scenarios.
package uindex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/querylang"
	"repro/internal/schema"
	"repro/internal/store"
)

// Re-exported types: the facade exposes the internal packages' vocabulary
// under one import path.
type (
	// OID is a four-byte object identifier.
	OID = store.OID
	// Attrs assigns attribute values for an object.
	Attrs = store.Attrs
	// Object is a stored object instance.
	Object = store.Object
	// Attr declares one class attribute.
	Attr = schema.Attr
	// Schema is a class schema; build with NewSchema.
	Schema = schema.Schema
	// Coding is a class-code assignment (the paper's COD relation).
	Coding = schema.Coding
	// RefEdge names one REF relationship, for CodingHonoring.
	RefEdge = schema.RefEdge
	// Query is the Section-3.4 general query.
	Query = core.Query
	// ValuePred restricts the indexed attribute value.
	ValuePred = core.ValuePred
	// Position restricts one (terminal-first) path position.
	Position = core.Position
	// ClassPattern is one alternative of a Position.
	ClassPattern = core.ClassPattern
	// Match is one query result.
	Match = core.Match
	// Stats reports query cost in the paper's units.
	Stats = core.Stats
	// Algorithm selects parallel (Algorithm 1) or forward retrieval.
	Algorithm = core.Algorithm
	// IndexSpec declares a U-index.
	IndexSpec = core.Spec
	// PathEntry is one (class code, oid) step of a match path.
	PathEntry = encoding.PathEntry
	// Tracker accounts distinct page reads across queries.
	Tracker = pager.Tracker
	// BufferPoolStats is a snapshot of the buffer-pool cache counters.
	BufferPoolStats = bufferpool.Stats
	// ExecContext is the per-query execution state (tracker + algorithm +
	// accumulated stats); one is created per query unless shared
	// explicitly.
	ExecContext = core.ExecContext
)

// Attribute type selectors for Attr.Type.
const (
	Uint64  = encoding.AttrUint64
	Int64   = encoding.AttrInt64
	Float64 = encoding.AttrFloat64
	String  = encoding.AttrString
)

// Retrieval algorithms (paper Section 3.3/3.4).
const (
	// Parallel is the paper's Algorithm 1 (Parscan).
	Parallel = core.Parallel
	// Forward is the naive forward-scanning baseline.
	Forward = core.Forward
)

// Query constructor helpers, re-exported from the core package.
var (
	Exact          = core.Exact
	OneOf          = core.OneOf
	Range          = core.Range
	Uint64Range    = core.Uint64Range
	On             = core.On
	OnExact        = core.OnExact
	OnObjects      = core.OnObjects
	OneOfClasses   = core.OneOfClasses
	Any            = core.Any
	NewTracker     = pager.NewTracker
	NewExecContext = core.NewExecContext
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// Options configures optional Database machinery.
type Options struct {
	// PoolPages, when positive, places a buffer pool of that many frames
	// (internal/bufferpool) between each index and its page file. The
	// pool is transparent to query results and to the paper's logical
	// page-read counts; PoolStats exposes its hit/miss counters.
	PoolPages int
	// PoolPolicy selects the pool's replacement policy: "clock" (the
	// default) or "lru".
	PoolPolicy string
}

// Database is a schema + object store + U-indexes, kept consistent.
//
// Concurrency contract: any number of concurrent readers OR a single
// writer. Query, QueryWith, QueryString, QueryParallel, Get, ClassOf and
// the other read-only accessors share a read lock and run in parallel (each
// query executes under its own ExecContext, so no per-query state is
// shared); Insert, Delete, Set, CreateIndex, DropIndex and Close take the
// write lock and run exclusively. The same contract holds layer by layer
// underneath: goroutine-safe buffer pools and page files, and index trees
// whose read paths never mutate shared state.
type Database struct {
	mu      sync.RWMutex
	sch     *schema.Schema
	st      *store.Store
	indexes map[string]*core.Index
	order   []string
	opts    Options
	pools   map[string]*bufferpool.Pool
}

// NewDatabase creates a database over the schema, assigning class codes if
// that has not happened yet. The schema may keep evolving afterwards
// (paper Figure 4); new classes receive codes automatically.
func NewDatabase(s *Schema) (*Database, error) {
	return NewDatabaseWith(s, Options{})
}

// NewDatabaseWith is NewDatabase with explicit Options.
func NewDatabaseWith(s *Schema, opts Options) (*Database, error) {
	if s.Coding() == nil {
		if _, err := s.AssignCodes(); err != nil {
			return nil, err
		}
	}
	return &Database{
		sch:     s,
		st:      store.New(s),
		indexes: make(map[string]*core.Index),
		opts:    opts,
		pools:   make(map[string]*bufferpool.Pool),
	}, nil
}

// Close releases every index's buffer pool (flushing dirty pages into the
// backing files first). A database without pools has nothing to release;
// Close is still safe to call. The database must not be used afterwards
// when pools were configured.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, name := range db.order {
		pool, ok := db.pools[name]
		if !ok {
			continue
		}
		if err := db.indexes[name].DropCache(); err != nil && first == nil {
			first = err
		}
		if err := pool.Close(); err != nil && first == nil {
			first = err
		}
		delete(db.pools, name)
	}
	return first
}

// DropCaches flushes every index's in-memory node cache so subsequent
// reads go through the page files (and their buffer pools, when
// configured). Cold-cache measurements call this between the build and
// measure phases; it takes the writer lock, so no queries may be in
// flight.
func (db *Database) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, name := range db.order {
		if err := db.indexes[name].DropCache(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PoolStats aggregates the buffer-pool counters over every index. ok is
// false when the database was opened without a pool (Options.PoolPages 0).
func (db *Database) PoolStats() (BufferPoolStats, bool) {
	if db.opts.PoolPages <= 0 {
		return BufferPoolStats{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var agg BufferPoolStats
	for _, p := range db.pools {
		agg.Add(p.PoolStats())
	}
	return agg, true
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.sch }

// Store returns the underlying object store (read-mostly access; prefer
// the Database mutation methods, which maintain indexes).
func (db *Database) Store() *store.Store { return db.st }

// Coding returns the default class coding.
func (db *Database) Coding() *Coding { return db.sch.Coding() }

// CreateIndex declares a U-index and builds it from the current objects.
// Each index lives in its own in-memory page file with the paper's 1024-byte
// pages; with Options.PoolPages set, a buffer pool sits in front of it.
func (db *Database) CreateIndex(spec IndexSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.indexes[spec.Name]; dup {
		return fmt.Errorf("uindex: index %q already exists", spec.Name)
	}
	var f pager.File = pager.NewMemFile(0)
	var pool *bufferpool.Pool
	if db.opts.PoolPages > 0 {
		var err error
		pool, err = bufferpool.New(f, bufferpool.Config{
			Pages:  db.opts.PoolPages,
			Policy: db.opts.PoolPolicy,
		})
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		f = pool
	}
	ix, err := core.New(f, db.st, spec)
	if err != nil {
		return err
	}
	if err := ix.Build(); err != nil {
		return err
	}
	db.indexes[spec.Name] = ix
	if pool != nil {
		db.pools[spec.Name] = pool
	}
	db.order = append(db.order, spec.Name)
	return nil
}

// DropIndex removes an index, closing its buffer pool if it has one.
func (db *Database) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ix, ok := db.indexes[name]
	if !ok {
		return fmt.Errorf("uindex: no index %q", name)
	}
	var err error
	if pool, ok := db.pools[name]; ok {
		err = ix.DropCache() // push tree-cache state down before the pool closes
		if cerr := pool.Close(); err == nil {
			err = cerr
		}
		delete(db.pools, name)
	}
	delete(db.indexes, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return err
}

// Index returns a declared index by name. The returned index may be used
// for concurrent read-only calls; interleaving direct mutations with
// Database traffic is the caller's responsibility.
func (db *Database) Index(name string) (*core.Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[name]
	return ix, ok
}

// Indexes lists the declared index names in creation order.
func (db *Database) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// Insert stores a new object and adds its entries to every index.
func (db *Database) Insert(class string, attrs Attrs) (OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	oid, err := db.st.Insert(class, attrs)
	if err != nil {
		return 0, err
	}
	for _, name := range db.order {
		if err := db.indexes[name].Add(oid); err != nil {
			return 0, fmt.Errorf("uindex: maintaining index %q: %w", name, err)
		}
	}
	return oid, nil
}

// Delete removes an object and its entries from every index. Objects that
// reference the deleted one keep dangling references; their index entries
// through the deleted object are removed here.
func (db *Database) Delete(oid OID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, name := range db.order {
		if err := db.indexes[name].Remove(oid); err != nil {
			return fmt.Errorf("uindex: maintaining index %q: %w", name, err)
		}
	}
	return db.st.Delete(oid)
}

// Set updates one attribute of an object, applying the batch index diff of
// the paper's Section 3.5 (a president switching companies is exactly one
// Set call).
func (db *Database) Set(oid OID, attr string, v any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	type diff struct {
		ix   *core.Index
		old  [][]byte
		name string
	}
	var diffs []diff
	for _, name := range db.order {
		ix := db.indexes[name]
		old, err := ix.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", name, err)
		}
		diffs = append(diffs, diff{ix: ix, old: old, name: name})
	}
	if _, err := db.st.SetAttr(oid, attr, v); err != nil {
		return err
	}
	for _, d := range diffs {
		newKeys, err := d.ix.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", d.name, err)
		}
		if err := d.ix.ApplyDiff(d.old, newKeys); err != nil {
			return fmt.Errorf("uindex: index %q: %w", d.name, err)
		}
	}
	return nil
}

// Get returns an object by id.
func (db *Database) Get(oid OID) (*Object, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.st.Get(oid)
}

// Query runs a query on the named index with the parallel algorithm. Each
// call executes under a fresh ExecContext, so any number of Query calls may
// run concurrently (they share the engine read lock).
func (db *Database) Query(index string, q Query) ([]Match, Stats, error) {
	return db.QueryWith(index, q, Parallel, nil)
}

// QueryWith runs a query with an explicit algorithm and optional shared
// tracker. A nil tracker gives the query a private one; a shared tracker
// must not be used from multiple goroutines at once (give each goroutine
// its own and combine them with Tracker.Merge).
func (db *Database) QueryWith(index string, q Query, alg Algorithm, tr *Tracker) ([]Match, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[index]
	if !ok {
		return nil, Stats{}, fmt.Errorf("uindex: no index %q", index)
	}
	return ix.Execute(q, alg, tr)
}

// QueryJob names one query of a QueryParallel batch.
type QueryJob struct {
	// Index is the name of the index to query.
	Index string
	// Query is the query to run.
	Query Query
	// Algorithm selects the retrieval strategy; the zero value is
	// Parallel (the paper's Algorithm 1).
	Algorithm Algorithm
}

// QueryResult is the outcome of one QueryJob.
type QueryResult struct {
	Matches []Match
	Stats   Stats
	Err     error
}

// QueryParallel executes a batch of queries concurrently on a pool of
// worker goroutines and returns the results in job order. workers <= 0
// selects GOMAXPROCS. Every job runs under its own ExecContext (private
// tracker, per-job stats), so jobs never share mutable state; the whole
// batch holds the engine read lock, so it runs against one consistent
// database snapshot while writers wait.
//
// Per-job Stats.PagesRead counts are the same as the job would report run
// alone on a cold tracker; experiment-level totals that must match a
// sequential shared-tracker run can be rebuilt by merging per-job trackers
// (see Tracker.Merge) — QueryParallel itself keeps jobs independent.
func (db *Database) QueryParallel(jobs []QueryJob, workers int) []QueryResult {
	results := make([]QueryResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				ix, ok := db.indexes[job.Index]
				if !ok {
					results[i].Err = fmt.Errorf("uindex: no index %q", job.Index)
					continue
				}
				ctx := core.NewExecContext(job.Algorithm)
				var ms []Match
				stats, err := ix.ExecuteCtx(job.Query, ctx, func(m Match) bool {
					ms = append(ms, m)
					return true
				})
				results[i] = QueryResult{Matches: ms, Stats: stats, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// QueryString parses and runs a paper-style textual query such as
//
//	(Color=Red, [C5A*, C5B])
//	(Age=[50-60], C1, C2$12 ; distinct 2)
//
// against the named index. See the querylang package documentation for the
// grammar.
func (db *Database) QueryString(index, query string) ([]Match, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[index]
	if !ok {
		return nil, Stats{}, fmt.Errorf("uindex: no index %q", index)
	}
	return querylang.Run(ix, query, nil)
}

// ParseQuery parses a paper-notation textual query (see the querylang
// package for the grammar) against an index obtained from Index().
func ParseQuery(ix *core.Index, query string) (Query, error) {
	return querylang.Parse(ix, query)
}

// ClassOf resolves an object id to its class name.
func (db *Database) ClassOf(oid OID) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.st.Get(oid)
	if !ok {
		return "", false
	}
	return o.Class, true
}

// CODTable renders the paper's COD relation (Section 3) for display.
func (db *Database) CODTable() []string {
	var out []string
	for _, row := range db.sch.Coding().Table() { // rows sorted by code
		out = append(out, fmt.Sprintf("%-24s COD %s", row.Class, row.Code.Compact()))
	}
	return out
}
