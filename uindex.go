// Package uindex is the public API of this repository: a working
// object-oriented database engine around the U-index of Gudes, "A Uniform
// Indexing Scheme for Object-Oriented Databases" (ICDE 1996 / Information
// Systems 22(4), 1997).
//
// A Database combines a class schema (with the paper's lexicographic class
// coding), an object store, and any number of U-indexes — each a single
// B+-tree with front-compressed keys that serves uniformly as a
// class-hierarchy index, a path (nested) index, or a combined
// class-hierarchy/path index. Mutations through the Database keep every
// index consistent.
//
// Quick start:
//
//	s := uindex.NewSchema()
//	s.AddClass("Vehicle", "",
//		uindex.Attr{Name: "Color", Type: uindex.String},
//	)
//	s.AddClass("Automobile", "Vehicle")
//	db, _ := uindex.NewDatabase(s)
//	db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"})
//	oid, _ := db.Insert("Automobile", uindex.Attrs{"Color": "Red"})
//	ms, _, _ := db.Query(context.Background(), "color", uindex.Query{
//		Value:     uindex.Exact("Red"),
//		Positions: []uindex.Position{uindex.On("Automobile")},
//	})
//
// See examples/ for runnable programs covering the paper's scenarios.
package uindex

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/querylang"
	"repro/internal/schema"
	"repro/internal/store"
)

// Sentinel errors. Returned errors wrap these; test with errors.Is.
var (
	// ErrClosed is returned by operations on a closed Database.
	ErrClosed = errors.New("uindex: database closed")
	// ErrIndexNotFound is returned when an operation names an index the
	// database does not have.
	ErrIndexNotFound = errors.New("uindex: index not found")
	// ErrUnknownClass is returned when an operation names a class the
	// schema does not declare.
	ErrUnknownClass = store.ErrUnknownClass
	// ErrSnapshotReleased is returned by queries through a released
	// Snapshot.
	ErrSnapshotReleased = btree.ErrSnapshotReleased
	// ErrCorruptFile is returned when a disk-backed index file is
	// structurally damaged (truncated or garbage headers, broken free
	// chain). Corruption is surfaced, never silently rebuilt over.
	ErrCorruptFile = pager.ErrCorruptFile
)

// ErrCorruptPage reports a page of a disk-backed index whose stored
// checksum does not match its payload; match with errors.As.
type ErrCorruptPage = pager.ErrCorruptPage

// Re-exported types: the facade exposes the internal packages' vocabulary
// under one import path.
type (
	// OID is a four-byte object identifier.
	OID = store.OID
	// Attrs assigns attribute values for an object.
	Attrs = store.Attrs
	// Object is a stored object instance.
	Object = store.Object
	// Attr declares one class attribute.
	Attr = schema.Attr
	// Schema is a class schema; build with NewSchema.
	Schema = schema.Schema
	// Coding is a class-code assignment (the paper's COD relation).
	Coding = schema.Coding
	// RefEdge names one REF relationship, for CodingHonoring.
	RefEdge = schema.RefEdge
	// Query is the Section-3.4 general query.
	Query = core.Query
	// ValuePred restricts the indexed attribute value.
	ValuePred = core.ValuePred
	// Position restricts one (terminal-first) path position.
	Position = core.Position
	// ClassPattern is one alternative of a Position.
	ClassPattern = core.ClassPattern
	// Match is one query result.
	Match = core.Match
	// Stats reports query cost in the paper's units.
	Stats = core.Stats
	// Algorithm selects parallel (Algorithm 1) or forward retrieval.
	Algorithm = core.Algorithm
	// IndexSpec declares a U-index.
	IndexSpec = core.Spec
	// PathEntry is one (class code, oid) step of a match path.
	PathEntry = encoding.PathEntry
	// Tracker accounts distinct page reads across queries.
	Tracker = pager.Tracker
	// BufferPoolStats is a snapshot of the buffer-pool cache counters.
	BufferPoolStats = bufferpool.Stats
	// NodeCacheStats is a snapshot of an index's decoded-node cache
	// counters.
	NodeCacheStats = btree.CacheStats
	// ExecContext is the per-query execution state (tracker + algorithm +
	// accumulated stats); one is created per query unless shared
	// explicitly.
	ExecContext = core.ExecContext
)

// Attribute type selectors for Attr.Type.
const (
	Uint64  = encoding.AttrUint64
	Int64   = encoding.AttrInt64
	Float64 = encoding.AttrFloat64
	String  = encoding.AttrString
)

// Retrieval algorithms (paper Section 3.3/3.4).
const (
	// Parallel is the paper's Algorithm 1 (Parscan).
	Parallel = core.Parallel
	// Forward is the naive forward-scanning baseline.
	Forward = core.Forward
)

// Query constructor helpers, re-exported from the core package.
var (
	Exact          = core.Exact
	OneOf          = core.OneOf
	Range          = core.Range
	Uint64Range    = core.Uint64Range
	On             = core.On
	OnExact        = core.OnExact
	OnObjects      = core.OnObjects
	OneOfClasses   = core.OneOfClasses
	Any            = core.Any
	NewTracker     = pager.NewTracker
	NewExecContext = core.NewExecContext
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// Durability selects when a disk-backed index (Options.Dir) makes its
// state crash-safe. Whatever the mode, a checkpoint is atomic: a crash at
// any instant recovers the file to exactly the previous or the new
// checkpoint, never a mix, and every page read back is checksum-verified.
type Durability int

const (
	// DurabilityCheckpoint (the default) makes state durable at explicit
	// Checkpoint calls, at CreateIndex (the freshly built index), and at
	// Close and DropIndex.
	DurabilityCheckpoint Durability = iota
	// DurabilityNone checkpoints only at explicit Checkpoint calls and at
	// CreateIndex; Close and DropIndex discard everything after the last
	// checkpoint (the file keeps that checkpoint intact).
	DurabilityNone
	// DurabilitySync additionally checkpoints inside every mutation
	// (Insert, Delete, Set) before it returns — maximum safety, one fsync
	// pair per mutated index per call.
	DurabilitySync
)

// Options configures optional Database machinery.
type Options struct {
	// PoolPages, when positive, places a buffer pool of that many frames
	// (internal/bufferpool) between each index and its page file. The
	// pool is transparent to query results and to the paper's logical
	// page-read counts; PoolStats exposes its hit/miss counters.
	PoolPages int
	// PoolPolicy selects the pool's replacement policy: "clock" (the
	// default) or "lru".
	PoolPolicy string
	// NodeCacheSize caps each index's shared decoded-node cache, in
	// nodes: 0 selects the btree default, negative disables the caches.
	// An explicit IndexSpec.NodeCacheSize overrides this per index. The
	// cache is transparent to query results and to the paper's logical
	// page-read counts (those are tracked before any cache is
	// consulted); NodeCacheStats exposes its hit/miss counters.
	NodeCacheSize int
	// Dir, when non-empty, backs each index with a crash-safe page file at
	// Dir/<name>.uidx (checksummed pages, atomic shadow-paged
	// checkpoints) instead of an in-memory file. CreateIndex reopens an
	// existing file from its last checkpoint without rebuilding; a corrupt
	// file surfaces an error matching ErrCorruptFile or ErrCorruptPage,
	// never a silent rebuild. Only the index trees live in these files —
	// persist the object store separately with Save/Load.
	Dir string
	// Durability selects when disk-backed indexes checkpoint; see the
	// Durability constants. Ignored when Dir is empty.
	Durability Durability
}

// Database is a schema + object store + U-indexes, kept consistent.
//
// Concurrency contract: writers never block readers. Every query (Query,
// QueryParallel, the deprecated wrappers, and queries through a Snapshot)
// runs against an immutable pinned version of each index tree, so it sees a
// consistent state regardless of concurrent mutations and never waits for
// them. Mutations (Insert, Delete, Set) serialize per index — writers on
// indexes with disjoint coverage proceed in parallel; writers on the same
// index queue on that index's write lock. Catalog operations (CreateIndex,
// DropIndex, Close) are exclusive: they wait for in-flight operations and
// block new ones while they restructure the index set.
type Database struct {
	// mu guards the catalog: the index map, creation order, pools, and the
	// closed flag. Queries and object mutations hold it in read mode (they
	// only look indexes up); catalog operations hold it in write mode.
	mu      sync.RWMutex
	sch     *schema.Schema
	st      *store.Store
	indexes map[string]*core.Index
	order   []string
	opts    Options
	pools   map[string]*bufferpool.Pool
	files   map[string]*pager.DiskFile // disk-backed indexes (Options.Dir)
	closed  bool

	// snapMu guards the open-snapshot registry (always acquired after mu
	// when both are held); Close releases every snapshot still open so no
	// epoch pin outlives the database.
	snapMu sync.Mutex
	snaps  map[*Snapshot]struct{}
	// ctrs are the cumulative counters behind Metrics().
	ctrs counters
}

// NewDatabase creates a database over the schema, assigning class codes if
// that has not happened yet. The schema may keep evolving afterwards
// (paper Figure 4); new classes receive codes automatically.
func NewDatabase(s *Schema) (*Database, error) {
	return NewDatabaseWith(s, Options{})
}

// NewDatabaseWith is NewDatabase with explicit Options.
func NewDatabaseWith(s *Schema, opts Options) (*Database, error) {
	if s.Coding() == nil {
		if _, err := s.AssignCodes(); err != nil {
			return nil, err
		}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("uindex: creating database directory: %w", err)
		}
	}
	return &Database{
		sch:     s,
		st:      store.New(s),
		indexes: make(map[string]*core.Index),
		opts:    opts,
		pools:   make(map[string]*bufferpool.Pool),
		files:   make(map[string]*pager.DiskFile),
	}, nil
}

// Close marks the database closed, checkpoints every disk-backed index
// (unless Options.Durability is DurabilityNone, which discards work after
// the last checkpoint), and releases buffer pools and files. It waits for
// in-flight operations — including queries through open Snapshots, which
// are released here so no epoch pin survives Close; subsequent operations
// fail with ErrClosed (snapshot queries with ErrSnapshotReleased). Close is
// idempotent.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.releaseSnapshotsLocked()
	var first error
	for _, name := range db.order {
		if err := db.releaseIndexLocked(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// releaseIndexLocked checkpoints (per the durability mode) and tears down
// one index's pool and disk file. The caller holds the catalog write lock.
func (db *Database) releaseIndexLocked(name string) error {
	ix := db.indexes[name]
	pool, hasPool := db.pools[name]
	df, disk := db.files[name]
	var first error
	if disk {
		if db.opts.Durability != DurabilityNone {
			first = db.checkpointIndexLocked(name, ix)
		}
		// The checkpoint above is the only publish point: closing must
		// not sync a stale payload, so the pool is discarded (its frames
		// are clean after a successful checkpoint) and the file closed
		// without a further checkpoint.
		if err := df.CloseDiscard(); err != nil && first == nil {
			first = err
		}
		delete(db.pools, name)
		delete(db.files, name)
		return first
	}
	if hasPool {
		first = ix.DropCache() // push tree-cache state down before the pool closes
		if err := pool.Close(); err != nil && first == nil {
			first = err
		}
		delete(db.pools, name)
	}
	return first
}

// DropCaches flushes every index's in-memory node cache so subsequent
// reads go through the page files (and their buffer pools, when
// configured). Cold-cache measurements call this between the build and
// measure phases; it takes the catalog write lock, so no catalog changes
// may race it, and each index's write lock, so no mutations are in flight.
func (db *Database) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var first error
	for _, name := range db.order {
		ix := db.indexes[name]
		ix.LockWrite()
		err := ix.DropCache()
		ix.UnlockWrite()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PoolStats aggregates the buffer-pool counters over every index. ok is
// false when the database was opened without a pool (Options.PoolPages 0).
func (db *Database) PoolStats() (BufferPoolStats, bool) {
	if db.opts.PoolPages <= 0 {
		return BufferPoolStats{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var agg BufferPoolStats
	for _, p := range db.pools {
		agg.Add(p.PoolStats())
	}
	return agg, true
}

// NodeCacheStats aggregates the decoded-node cache counters over every
// index: cumulative hits and misses, and the nodes currently resident.
func (db *Database) NodeCacheStats() NodeCacheStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var agg NodeCacheStats
	for _, ix := range db.indexes {
		st := ix.NodeCacheStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Entries += st.Entries
	}
	return agg
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.sch }

// Store returns the underlying object store (read-mostly access; prefer
// the Database mutation methods, which maintain indexes).
func (db *Database) Store() *store.Store { return db.st }

// Coding returns the default class coding.
func (db *Database) Coding() *Coding { return db.sch.Coding() }

// CreateIndex declares a U-index and builds it from the current objects.
// Each index lives in its own page file with the paper's 1024-byte pages —
// in memory by default, or a crash-safe file at Options.Dir/<name>.uidx
// when Dir is set; with Options.PoolPages set, a buffer pool sits in front
// of it.
//
// With Dir set, an existing file is reopened from its last checkpoint
// instead of rebuilding: the caller must present the same spec and an
// object store with the same contents (see Load). Corruption — structural
// damage or a checksum-failing page — is surfaced as an error matching
// ErrCorruptFile or ErrCorruptPage, never silently rebuilt over. A freshly
// built index is checkpointed before CreateIndex returns.
func (db *Database) CreateIndex(spec IndexSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.indexes[spec.Name]; dup {
		return fmt.Errorf("uindex: index %q already exists", spec.Name)
	}
	if spec.NodeCacheSize == 0 {
		spec.NodeCacheSize = db.opts.NodeCacheSize
	}
	var (
		f          pager.File
		df         *pager.DiskFile
		reopen     bool
		reopenMeta pager.PageID
	)
	if db.opts.Dir != "" {
		path := filepath.Join(db.opts.Dir, spec.Name+".uidx")
		var err error
		if _, statErr := os.Stat(path); statErr == nil {
			df, err = pager.OpenDiskFile(path)
			if err != nil {
				return fmt.Errorf("uindex: index %q: %w", spec.Name, err)
			}
			if pl := df.Payload(); len(pl) == 4 {
				reopenMeta = pager.PageID(binary.BigEndian.Uint32(pl))
				reopen = true
			} else if len(pl) != 0 {
				df.CloseDiscard()
				return fmt.Errorf("uindex: index %q: %w: checkpoint payload has unexpected length %d",
					spec.Name, ErrCorruptFile, len(pl))
			}
			// An empty payload means the file was created but never
			// checkpointed with a built index: build fresh onto it.
		} else if errors.Is(statErr, fs.ErrNotExist) {
			df, err = pager.CreateDiskFile(path, 0)
			if err != nil {
				return fmt.Errorf("uindex: index %q: %w", spec.Name, err)
			}
		} else {
			return fmt.Errorf("uindex: index %q: %w", spec.Name, statErr)
		}
		f = df
	} else {
		f = pager.NewMemFile(0)
	}
	var pool *bufferpool.Pool
	if db.opts.PoolPages > 0 {
		var err error
		pool, err = bufferpool.New(f, bufferpool.Config{
			Pages:  db.opts.PoolPages,
			Policy: db.opts.PoolPolicy,
		})
		if err != nil {
			if df != nil {
				df.CloseDiscard()
			}
			return fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		f = pool
	}
	var ix *core.Index
	var err error
	if reopen {
		ix, err = core.Open(f, db.st, spec, reopenMeta)
	} else {
		ix, err = core.New(f, db.st, spec)
		if err == nil {
			err = ix.Build()
		}
	}
	if err != nil {
		if df != nil {
			df.CloseDiscard()
		}
		return err
	}
	db.indexes[spec.Name] = ix
	if pool != nil {
		db.pools[spec.Name] = pool
	}
	if df != nil {
		db.files[spec.Name] = df
	}
	db.order = append(db.order, spec.Name)
	if df != nil && !reopen {
		// Make the freshly built index durable so a reopened file is
		// self-describing from the start.
		if err := db.checkpointIndexLocked(spec.Name, ix); err != nil {
			return fmt.Errorf("uindex: index %q: checkpointing initial build: %w", spec.Name, err)
		}
	}
	return nil
}

// checkpointIndexLocked makes the named index's current state durable: it
// flushes the tree (copy-on-write metadata), stages the new meta page id as
// the file's checkpoint payload, and flushes the pool (or syncs the file),
// which atomically publishes pages, free list, and payload together. The
// caller must hold either the index's write lock or the catalog write lock.
// Indexes that are not disk-backed are a no-op.
func (db *Database) checkpointIndexLocked(name string, ix *core.Index) error {
	df, ok := db.files[name]
	if !ok {
		return nil
	}
	if err := ix.Flush(); err != nil {
		return err
	}
	var pl [4]byte
	binary.BigEndian.PutUint32(pl[:], uint32(ix.MetaPage()))
	if err := df.SetPayload(pl[:]); err != nil {
		return err
	}
	if pool, ok := db.pools[name]; ok {
		return pool.FlushAll()
	}
	return df.Sync()
}

// maybeSyncIndex checkpoints one index after a mutation when the database
// runs with DurabilitySync; the caller holds the index's write lock.
func (db *Database) maybeSyncIndex(ix *core.Index) error {
	if db.opts.Durability != DurabilitySync {
		return nil
	}
	return db.checkpointIndexLocked(ix.Spec().Name, ix)
}

// Checkpoint makes the current state of every disk-backed index durable.
// Each index checkpoints atomically under its write lock: a crash at any
// instant leaves each index file at exactly its previous or its new
// checkpoint. Queries proceed unblocked throughout. Databases without
// Options.Dir return nil immediately.
func (db *Database) Checkpoint() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	for _, name := range db.order {
		ix := db.indexes[name]
		if _, ok := db.files[name]; !ok {
			continue
		}
		ix.LockWrite()
		err := db.checkpointIndexLocked(name, ix)
		ix.UnlockWrite()
		if err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", name, err)
		}
	}
	db.ctrs.checkpoints.Add(1)
	return nil
}

// DropIndex removes an index, closing its buffer pool and disk file if it
// has them. A disk-backed index is checkpointed first (unless the database
// runs with DurabilityNone); its file is left on disk and can be
// re-attached by a later CreateIndex with the same name.
func (db *Database) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.indexes[name]; !ok {
		return fmt.Errorf("uindex: no index %q: %w", name, ErrIndexNotFound)
	}
	err := db.releaseIndexLocked(name)
	delete(db.indexes, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return err
}

// Index returns a declared index by name. The returned index may be used
// for concurrent read-only calls; interleaving direct mutations with
// Database traffic is the caller's responsibility.
func (db *Database) Index(name string) (*core.Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[name]
	return ix, ok
}

// Indexes lists the declared index names in creation order.
func (db *Database) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// coveringIndexes returns the indexes (in creation order) an object of the
// given class can participate in. Acquiring their write locks in this order
// — the single global order — keeps multi-index writers deadlock-free.
func (db *Database) coveringIndexes(class string) []*core.Index {
	out := make([]*core.Index, 0, len(db.order))
	for _, name := range db.order {
		if ix := db.indexes[name]; ix.Covers(class) {
			out = append(out, ix)
		}
	}
	return out
}

// Insert stores a new object and adds its entries to every index that can
// cover its class. Inserts of objects with disjoint index coverage run in
// parallel; only writers to the same index serialize. Queries are never
// blocked — they read the pinned tree version from before or after each
// index commit.
func (db *Database) Insert(class string, attrs Attrs) (OID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, ErrClosed
	}
	oid, err := db.st.Insert(class, attrs)
	if err != nil {
		db.ctrs.countWrite(&db.ctrs.inserts, err)
		return 0, err
	}
	for _, ix := range db.coveringIndexes(class) {
		ix.LockWrite()
		err := ix.Add(oid)
		if err == nil {
			err = db.maybeSyncIndex(ix)
		}
		ix.UnlockWrite()
		if err != nil {
			db.ctrs.countWrite(&db.ctrs.inserts, err)
			return 0, fmt.Errorf("uindex: maintaining index %q: %w", ix.Spec().Name, err)
		}
	}
	db.ctrs.countWrite(&db.ctrs.inserts, nil)
	return oid, nil
}

// Delete removes an object and its entries from every index. Objects that
// reference the deleted one keep dangling references; their index entries
// through the deleted object are removed here. The write locks of every
// covering index are held for the whole removal, so concurrent writers to
// those indexes wait while others proceed.
func (db *Database) Delete(oid OID) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	defer func() { db.ctrs.countWrite(&db.ctrs.deletes, err) }()
	o, ok := db.st.Get(oid)
	if !ok {
		return db.st.Delete(oid) // surfaces the store's not-found error
	}
	covering := db.coveringIndexes(o.Class)
	for _, ix := range covering {
		ix.LockWrite()
	}
	defer func() {
		for _, ix := range covering {
			ix.UnlockWrite()
		}
	}()
	for _, ix := range covering {
		if err := ix.Remove(oid); err != nil {
			return fmt.Errorf("uindex: maintaining index %q: %w", ix.Spec().Name, err)
		}
	}
	if err := db.st.Delete(oid); err != nil {
		return err
	}
	for _, ix := range covering {
		if err := db.maybeSyncIndex(ix); err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", ix.Spec().Name, err)
		}
	}
	return nil
}

// Set updates one attribute of an object, applying the batch index diff of
// the paper's Section 3.5 (a president switching companies is exactly one
// Set call). The write locks of every covering index are held across the
// before-enumeration, the store update, and the diff application, so each
// index moves atomically from the old state to the new one.
func (db *Database) Set(oid OID, attr string, v any) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	defer func() { db.ctrs.countWrite(&db.ctrs.sets, err) }()
	o, ok := db.st.Get(oid)
	if !ok {
		_, err := db.st.SetAttr(oid, attr, v) // surfaces the store's not-found error
		return err
	}
	covering := db.coveringIndexes(o.Class)
	for _, ix := range covering {
		ix.LockWrite()
	}
	defer func() {
		for _, ix := range covering {
			ix.UnlockWrite()
		}
	}()
	olds := make([][][]byte, len(covering))
	for i, ix := range covering {
		old, err := ix.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", ix.Spec().Name, err)
		}
		olds[i] = old
	}
	if _, err := db.st.SetAttr(oid, attr, v); err != nil {
		return err
	}
	for i, ix := range covering {
		newKeys, err := ix.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", ix.Spec().Name, err)
		}
		if err := ix.ApplyDiff(olds[i], newKeys); err != nil {
			return fmt.Errorf("uindex: index %q: %w", ix.Spec().Name, err)
		}
	}
	for _, ix := range covering {
		if err := db.maybeSyncIndex(ix); err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", ix.Spec().Name, err)
		}
	}
	return nil
}

// Get returns an object by id.
func (db *Database) Get(oid OID) (*Object, bool) {
	return db.st.Get(oid)
}

// QueryOption configures one Query call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	alg  Algorithm
	tr   *Tracker
	snap *Snapshot
}

// WithAlgorithm selects the retrieval strategy (default Parallel, the
// paper's Algorithm 1).
func WithAlgorithm(alg Algorithm) QueryOption {
	return func(c *queryConfig) { c.alg = alg }
}

// WithTracker shares a page-read tracker across queries, reproducing the
// paper's buffered experiment model (cumulative distinct pages). A shared
// tracker must not be used from multiple goroutines at once; give each
// goroutine its own and combine them with Tracker.Merge.
func WithTracker(tr *Tracker) QueryOption {
	return func(c *queryConfig) { c.tr = tr }
}

// WithSnapshot runs the query against a previously taken Snapshot instead
// of the current state: the same snapshot serves any number of queries, all
// seeing one consistent version regardless of concurrent writers.
func WithSnapshot(s *Snapshot) QueryOption {
	return func(c *queryConfig) { c.snap = s }
}

// Query runs a query on the named index. Options select the algorithm, a
// shared tracker, or a snapshot to read from; defaults are the parallel
// algorithm, a private tracker, and the current state. ctx cancellation
// aborts the scan at the next page visit.
//
// Every query runs against one immutable pinned version of the index tree,
// so concurrent mutations are neither observed mid-query nor waited on. Any
// number of Query calls run in parallel.
func (db *Database) Query(ctx context.Context, index string, q Query, opts ...QueryOption) ([]Match, Stats, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.snap != nil {
		return cfg.snap.query(ctx, index, q, cfg)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, Stats{}, ErrClosed
	}
	ix, ok := db.indexes[index]
	if !ok {
		err := fmt.Errorf("uindex: no index %q: %w", index, ErrIndexNotFound)
		db.ctrs.countQuery(Stats{}, err)
		return nil, Stats{}, err
	}
	ec := &core.ExecContext{Tracker: cfg.tr, Algorithm: cfg.alg}
	var out []Match
	stats, err := ix.ExecuteCtx(ctx, q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	db.ctrs.countQuery(stats, err)
	return out, stats, err
}

// QueryWith runs a query with an explicit algorithm and optional shared
// tracker.
//
// Deprecated: use Query with WithAlgorithm and WithTracker options.
func (db *Database) QueryWith(index string, q Query, alg Algorithm, tr *Tracker) ([]Match, Stats, error) {
	return db.Query(context.Background(), index, q, WithAlgorithm(alg), WithTracker(tr))
}

// QueryString parses and runs a paper-style textual query such as
//
//	(Color=Red, [C5A*, C5B])
//	(Age=[50-60], C1, C2$12 ; distinct 2)
//
// against the named index. See the querylang package documentation for the
// grammar.
//
// Deprecated: use ParseQuery and Query, which add context cancellation and
// per-call options.
func (db *Database) QueryString(index, query string) ([]Match, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, Stats{}, ErrClosed
	}
	ix, ok := db.indexes[index]
	if !ok {
		return nil, Stats{}, fmt.Errorf("uindex: no index %q: %w", index, ErrIndexNotFound)
	}
	return querylang.Run(context.Background(), ix, query, nil)
}

// QueryJob names one query of a QueryParallel batch.
type QueryJob struct {
	// Index is the name of the index to query.
	Index string
	// Query is the query to run.
	Query Query
	// Algorithm selects the retrieval strategy; the zero value is
	// Parallel (the paper's Algorithm 1).
	Algorithm Algorithm
}

// QueryResult is the outcome of one QueryJob.
type QueryResult struct {
	Matches []Match
	Stats   Stats
	Err     error
}

// QueryParallel executes a batch of queries concurrently on a pool of
// worker goroutines and returns the results in job order. workers <= 0
// selects GOMAXPROCS. Every job runs under its own ExecContext (private
// tracker, per-job stats), so jobs never share mutable state. The batch
// runs against one database Snapshot, so every job sees the same consistent
// version while concurrent writers proceed unblocked. ctx cancellation
// aborts the remaining jobs at their next page visit.
//
// Per-job Stats.PagesRead counts are the same as the job would report run
// alone on a cold tracker; experiment-level totals that must match a
// sequential shared-tracker run can be rebuilt by merging per-job trackers
// (see Tracker.Merge) — QueryParallel itself keeps jobs independent.
//
// When ctx is canceled mid-batch, in-flight jobs abort at their next page
// visit and every not-yet-started job is drained without executing; both
// record ctx's error in their QueryResult, so the pool returns promptly
// instead of plowing through the remaining queue.
func (db *Database) QueryParallel(ctx context.Context, jobs []QueryJob, workers int) []QueryResult {
	results := make([]QueryResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	snap, err := db.Snapshot()
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	defer snap.Release()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					// Drain without executing: a canceled batch must not
					// start new scans just to have each one abort at its
					// first page visit.
					results[i] = QueryResult{Err: err}
					continue
				}
				job := jobs[i]
				ms, stats, err := snap.Query(ctx, job.Index, job.Query, WithAlgorithm(job.Algorithm))
				results[i] = QueryResult{Matches: ms, Stats: stats, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// ParseQuery parses a paper-notation textual query (see the querylang
// package for the grammar) against an index obtained from Index().
func ParseQuery(ix *core.Index, query string) (Query, error) {
	return querylang.Parse(ix, query)
}

// ClassOf resolves an object id to its class name.
func (db *Database) ClassOf(oid OID) (string, bool) {
	o, ok := db.st.Get(oid)
	if !ok {
		return "", false
	}
	return o.Class, true
}

// CODTable renders the paper's COD relation (Section 3) for display.
func (db *Database) CODTable() []string {
	var out []string
	for _, row := range db.sch.Coding().Table() { // rows sorted by code
		out = append(out, fmt.Sprintf("%-24s COD %s", row.Class, row.Code.Compact()))
	}
	return out
}
