// Package uindex is the public API of this repository: a working
// object-oriented database engine around the U-index of Gudes, "A Uniform
// Indexing Scheme for Object-Oriented Databases" (ICDE 1996 / Information
// Systems 22(4), 1997).
//
// A Database combines a class schema (with the paper's lexicographic class
// coding), an object store, and any number of U-indexes — each a single
// B+-tree with front-compressed keys that serves uniformly as a
// class-hierarchy index, a path (nested) index, or a combined
// class-hierarchy/path index. Mutations through the Database keep every
// index consistent.
//
// Quick start:
//
//	s := uindex.NewSchema()
//	s.AddClass("Vehicle", "",
//		uindex.Attr{Name: "Color", Type: uindex.String},
//	)
//	s.AddClass("Automobile", "Vehicle")
//	db, _ := uindex.NewDatabase(s)
//	db.CreateIndex(uindex.IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"})
//	oid, _ := db.Insert("Automobile", uindex.Attrs{"Color": "Red"})
//	ms, _, _ := db.Query(context.Background(), "color", uindex.Query{
//		Value:     uindex.Exact("Red"),
//		Positions: []uindex.Position{uindex.On("Automobile")},
//	})
//
// See examples/ for runnable programs covering the paper's scenarios.
package uindex

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/pager"
	"repro/internal/querylang"
	"repro/internal/schema"
	"repro/internal/store"
)

// Sentinel errors. Returned errors wrap these; test with errors.Is.
var (
	// ErrClosed is returned by operations on a closed Database.
	ErrClosed = errors.New("uindex: database closed")
	// ErrIndexNotFound is returned when an operation names an index the
	// database does not have.
	ErrIndexNotFound = errors.New("uindex: index not found")
	// ErrUnknownClass is returned when an operation names a class the
	// schema does not declare.
	ErrUnknownClass = store.ErrUnknownClass
	// ErrSnapshotReleased is returned by queries through a released
	// Snapshot.
	ErrSnapshotReleased = btree.ErrSnapshotReleased
	// ErrCorruptFile is returned when a disk-backed index file is
	// structurally damaged (truncated or garbage headers, broken free
	// chain). Corruption is surfaced, never silently rebuilt over.
	ErrCorruptFile = pager.ErrCorruptFile
	// ErrRecovery is returned by Open (and by LoadFileWith reopening
	// disk-backed indexes) when recovery cannot proceed: a damaged commit
	// manifest, a corrupt write-ahead log, an unreadable store snapshot, or
	// a corrupt index file. The underlying cause (ErrCorruptFile, an
	// ErrCorruptPage, the WAL detail) stays in the chain for
	// errors.Is/errors.As.
	ErrRecovery = errors.New("uindex: recovery failed")
)

// ErrCorruptPage reports a page of a disk-backed index whose stored
// checksum does not match its payload; match with errors.As.
type ErrCorruptPage = pager.ErrCorruptPage

// Re-exported types: the facade exposes the internal packages' vocabulary
// under one import path.
type (
	// OID is a four-byte object identifier.
	OID = store.OID
	// Attrs assigns attribute values for an object.
	Attrs = store.Attrs
	// Object is a stored object instance.
	Object = store.Object
	// Attr declares one class attribute.
	Attr = schema.Attr
	// Schema is a class schema; build with NewSchema.
	Schema = schema.Schema
	// Coding is a class-code assignment (the paper's COD relation).
	Coding = schema.Coding
	// RefEdge names one REF relationship, for CodingHonoring.
	RefEdge = schema.RefEdge
	// Query is the Section-3.4 general query.
	Query = core.Query
	// ValuePred restricts the indexed attribute value.
	ValuePred = core.ValuePred
	// Position restricts one (terminal-first) path position.
	Position = core.Position
	// ClassPattern is one alternative of a Position.
	ClassPattern = core.ClassPattern
	// Match is one query result.
	Match = core.Match
	// Stats reports query cost in the paper's units.
	Stats = core.Stats
	// Algorithm selects parallel (Algorithm 1) or forward retrieval.
	Algorithm = core.Algorithm
	// IndexSpec declares a U-index.
	IndexSpec = core.Spec
	// PathEntry is one (class code, oid) step of a match path.
	PathEntry = encoding.PathEntry
	// Tracker accounts distinct page reads across queries.
	Tracker = pager.Tracker
	// BufferPoolStats is a snapshot of the buffer-pool cache counters.
	BufferPoolStats = bufferpool.Stats
	// NodeCacheStats is a snapshot of an index's decoded-node cache
	// counters.
	NodeCacheStats = btree.CacheStats
	// ExecContext is the per-query execution state (tracker + algorithm +
	// accumulated stats); one is created per query unless shared
	// explicitly.
	ExecContext = core.ExecContext
)

// Attribute type selectors for Attr.Type.
const (
	Uint64  = encoding.AttrUint64
	Int64   = encoding.AttrInt64
	Float64 = encoding.AttrFloat64
	String  = encoding.AttrString
)

// Retrieval algorithms (paper Section 3.3/3.4).
const (
	// Parallel is the paper's Algorithm 1 (Parscan).
	Parallel = core.Parallel
	// Forward is the naive forward-scanning baseline.
	Forward = core.Forward
)

// Query constructor helpers, re-exported from the core package.
var (
	Exact          = core.Exact
	OneOf          = core.OneOf
	Range          = core.Range
	Uint64Range    = core.Uint64Range
	On             = core.On
	OnExact        = core.OnExact
	OnObjects      = core.OnObjects
	OneOfClasses   = core.OneOfClasses
	Any            = core.Any
	NewTracker     = pager.NewTracker
	NewExecContext = core.NewExecContext
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// Durability selects when a disk-backed database (Options.Dir) makes its
// state crash-safe. Whatever the mode, a checkpoint is atomic: a crash at
// any instant recovers each file to exactly the previous or the new
// checkpoint, never a mix, and every page read back is checksum-verified.
type Durability int

const (
	// DurabilityCheckpoint (the default) makes state durable at explicit
	// Checkpoint calls, at CreateIndex (the freshly built index), and at
	// Close and DropIndex.
	DurabilityCheckpoint Durability = iota
	// DurabilityNone checkpoints only at explicit Checkpoint calls and at
	// CreateIndex; Close and DropIndex discard everything after the last
	// checkpoint (the file keeps that checkpoint intact).
	DurabilityNone
	// DurabilitySync gives per-mutation durability the legacy way, without
	// a write-ahead log: every mutation (Insert, Delete, Set) checkpoints
	// each index it touched before returning — one fsync pair per mutated
	// index per call. It applies when Dir is set and the WAL is disabled;
	// for per-mutation durability at a fraction of the fsync cost, use
	// DurabilityWAL, where a mutation is durable as soon as its log record
	// is fsynced (one group fsync shared by concurrent committers) rather
	// than after a full checkpoint.
	DurabilitySync
	// DurabilityWAL puts a group-commit write-ahead log in front of the
	// shadow-paging checkpoints: every mutation appends a logical record
	// to Dir/wal.log and returns once that record is fsynced — concurrent
	// committers share one fsync. A background checkpointer folds the log
	// into the shadow-paged files incrementally, without stalling writers,
	// and truncates the replayed prefix. Databases in this mode must be
	// reopened with Open, which replays the committed log suffix on top of
	// the last checkpoint.
	DurabilityWAL
)

// Options configures optional Database machinery.
type Options struct {
	// PoolPages, when positive, places a buffer pool of that many frames
	// (internal/bufferpool) between each index and its page file. The
	// pool is transparent to query results and to the paper's logical
	// page-read counts; PoolStats exposes its hit/miss counters.
	PoolPages int
	// PoolPolicy selects the pool's replacement policy: "clock" (the
	// default) or "lru".
	PoolPolicy string
	// NodeCacheSize caps each index's shared decoded-node cache, in
	// nodes: 0 selects the btree default, negative disables the caches.
	// An explicit IndexSpec.NodeCacheSize overrides this per index. The
	// cache is transparent to query results and to the paper's logical
	// page-read counts (those are tracked before any cache is
	// consulted); NodeCacheStats exposes its hit/miss counters.
	NodeCacheSize int
	// Dir, when non-empty, backs each index with a crash-safe page file at
	// Dir/<name>.uidx (checksummed pages, atomic shadow-paged
	// checkpoints) instead of an in-memory file. CreateIndex reopens an
	// existing file from its last checkpoint without rebuilding; a corrupt
	// file surfaces an error matching ErrCorruptFile or ErrCorruptPage,
	// never a silent rebuild. Only the index trees live in these files —
	// persist the object store separately with Save/Load.
	Dir string
	// Durability selects when disk-backed indexes checkpoint; see the
	// Durability constants. Ignored when Dir is empty.
	Durability Durability
	// NoPrefetch disables the Parscan frontier prefetcher on every index
	// (an explicit IndexSpec.NoPrefetch sets it per index). Prefetch only
	// activates when a buffer pool is configured (PoolPages > 0): the
	// scan hands its next-level page frontier to a background goroutine
	// that loads it with one batched read while the current level is
	// decoded. Like the caches it is transparent to query results and to
	// the paper's logical page-read counts; Metrics exposes the
	// prefetch counters.
	NoPrefetch bool
	// WALMaxDelay bounds how long the group-commit daemon lingers after a
	// record arrives before forcing the fsync, trading commit latency for
	// larger batches. 0 (the default) syncs as soon as the daemon is free:
	// records arriving during an in-flight fsync still coalesce into the
	// next one, so fsyncs amortize under concurrency with no added
	// latency. Only meaningful with DurabilityWAL.
	WALMaxDelay time.Duration
	// WALMaxBatch caps the records one group commit accumulates before the
	// fsync fires regardless of WALMaxDelay; 0 means unbounded. Only
	// meaningful with DurabilityWAL.
	WALMaxBatch int
	// WALCheckpointBytes is the live-log size that wakes the background
	// checkpointer with DurabilityWAL; 0 selects a 4 MiB default, negative
	// disables size-triggered checkpoints (explicit Checkpoint calls and
	// Close still fold the log).
	WALCheckpointBytes int64
	// Shards, when greater than 1, partitions each index into up to that
	// many shards by contiguous class-code intervals: every entry routes to
	// exactly one shard by the class code at position 0 of its key (the
	// terminal object's actual class), each shard owns its own page file,
	// buffer pool (PoolPages frames each), node cache, and writer lock, and
	// queries scatter over the relevant shards and merge in key order.
	// The effective count is clamped to the number of classes under the
	// index's terminal class and to pager.MaxShards (61). With Dir set, a
	// sharded index lives in Dir/<name>.shard<i>.uidx files published
	// atomically by a Dir/<name>.manifest commit record; an existing
	// on-disk layout always wins over this setting on reopen. 0 or 1
	// keeps the unsharded single-file layout.
	Shards int
}

// Database is a schema + object store + U-indexes, kept consistent.
//
// Concurrency contract: writers never block readers. Every query (Query,
// QueryParallel, the deprecated wrappers, and queries through a Snapshot)
// runs against an immutable pinned version of each index tree, so it sees a
// consistent state regardless of concurrent mutations and never waits for
// them. Mutations (Insert, Delete, Set) serialize per index — writers on
// indexes with disjoint coverage proceed in parallel; writers on the same
// index queue on that index's write lock. Catalog operations (CreateIndex,
// DropIndex, Close) are exclusive: they wait for in-flight operations and
// block new ones while they restructure the index set.
type Database struct {
	// mu guards the catalog: the group map, creation order, and the closed
	// flag. Queries and object mutations hold it in read mode (they only
	// look groups up); catalog operations hold it in write mode.
	mu     sync.RWMutex
	sch    *schema.Schema
	st     *store.Store
	groups map[string]*indexGroup
	order  []string
	opts   Options
	closed bool

	// snapMu guards the open-snapshot registry (always acquired after mu
	// when both are held); Close releases every snapshot still open so no
	// epoch pin outlives the database.
	snapMu sync.Mutex
	snaps  map[*Snapshot]struct{}
	// ctrs are the cumulative counters behind Metrics().
	ctrs counters

	// wal is the group-commit machinery of DurabilityWAL: the log, the
	// database commit manifest, and the background checkpointer. Nil in
	// every other mode. Set once before the Database is published, so
	// reads need no lock.
	wal *walState
}

// indexGroup is the facade's unit of index management: one logical index as
// a core.Sharded group (a single shard in the unsharded layout) together
// with its per-shard machinery. Slots of pools/files are nil when the shard
// runs without a pool or in memory.
type indexGroup struct {
	name    string
	sharded *core.Sharded
	pools   []*bufferpool.Pool
	files   []*pager.DiskFile
	// manifest is the commit record of a sharded disk layout; nil for
	// single-file and in-memory groups. manifestMu serializes commits from
	// concurrent per-shard DurabilitySync checkpoints: a committer reads
	// every shard file's durable generation, and since each shard's
	// checkpoint completes before its mutation unlocks, the recorded
	// vector is always a consistent cut.
	manifest   *pager.Manifest
	manifestMu sync.Mutex
	// shardWrites counts, per shard, the mutations that acquired that
	// shard's writer lock — the write-distribution metric behind
	// ShardStats.
	shardWrites []atomic.Uint64
}

// disk reports whether the group is disk-backed.
func (g *indexGroup) disk() bool { return len(g.files) > 0 && g.files[0] != nil }

// allShards returns every shard index, ascending.
func (g *indexGroup) allShards() []int {
	ids := make([]int, g.sharded.NumShards())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// checkpointShard makes one shard's state durable (tree flush, meta-page
// payload, pool flush or file sync). The caller holds that shard's writer
// lock; memory-backed shards are a no-op. The shard's new generation is not
// published to the manifest here — pair with commitManifest.
func (g *indexGroup) checkpointShard(i int) error {
	df := g.files[i]
	if df == nil {
		return nil
	}
	ix := g.sharded.Shard(i)
	if err := ix.Flush(); err != nil {
		return err
	}
	var pl [4]byte
	binary.BigEndian.PutUint32(pl[:], uint32(ix.MetaPage()))
	if err := df.SetPayload(pl[:]); err != nil {
		return err
	}
	if pool := g.pools[i]; pool != nil {
		return pool.FlushAll()
	}
	return df.Sync()
}

// commitManifest atomically publishes the current durable generation of
// every shard file. No-op for groups without a manifest.
func (g *indexGroup) commitManifest() error {
	if g.manifest == nil {
		return nil
	}
	g.manifestMu.Lock()
	defer g.manifestMu.Unlock()
	gens := make([]uint64, len(g.files))
	for i, df := range g.files {
		gens[i] = df.Generation()
	}
	return g.manifest.Commit(gens)
}

// checkpointShards checkpoints the given shards, then commits the manifest.
// The caller holds the writer locks of exactly those shards; the manifest
// commit is safe regardless, because it reads only durable generations.
func (g *indexGroup) checkpointShards(ids []int) error {
	for _, i := range ids {
		if err := g.checkpointShard(i); err != nil {
			return err
		}
	}
	return g.commitManifest()
}

// NewDatabase creates a database over the schema, assigning class codes if
// that has not happened yet. The schema may keep evolving afterwards
// (paper Figure 4); new classes receive codes automatically.
func NewDatabase(s *Schema) (*Database, error) {
	return NewDatabaseWith(s, Options{})
}

// NewDatabaseWith is NewDatabase with explicit Options.
func NewDatabaseWith(s *Schema, opts Options) (*Database, error) {
	if s.Coding() == nil {
		if _, err := s.AssignCodes(); err != nil {
			return nil, err
		}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("uindex: creating database directory: %w", err)
		}
	}
	if opts.Durability == DurabilityWAL && opts.Dir == "" {
		return nil, errors.New("uindex: DurabilityWAL requires Options.Dir")
	}
	db := &Database{
		sch:    s,
		st:     store.New(s),
		groups: make(map[string]*indexGroup),
		opts:   opts,
	}
	if opts.Durability == DurabilityWAL {
		if err := db.bootstrapWAL(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Close marks the database closed, checkpoints every disk-backed index
// (unless Options.Durability is DurabilityNone, which discards work after
// the last checkpoint), and releases buffer pools and files. It waits for
// in-flight operations — including queries through open Snapshots, which
// are released here so no epoch pin survives Close; subsequent operations
// fail with ErrClosed (snapshot queries with ErrSnapshotReleased). Close is
// idempotent.
func (db *Database) Close() error {
	if db.wal != nil {
		// Stop the background checkpointer before taking the catalog
		// write lock: it checkpoints under the read lock, and a stop
		// signal sent while we hold the write lock could deadlock against
		// its next acquisition.
		db.wal.stopCheckpointer()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.releaseSnapshotsLocked()
	var first error
	if db.wal != nil {
		// Final fold: everything the log holds lands in the shadow-paged
		// files and the db manifest, so the log closes empty.
		first = db.walCheckpointLocked()
		if err := db.wal.log.Close(); err != nil && first == nil {
			first = err
		}
		if err := db.wal.manifest.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, name := range db.order {
		if err := db.releaseGroupLocked(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// releaseGroupLocked checkpoints (per the durability mode) and tears down
// one group's pools, disk files, and manifest. The caller holds the catalog
// write lock.
func (db *Database) releaseGroupLocked(name string) error {
	g := db.groups[name]
	var first error
	if g.disk() {
		// With a WAL, the caller (Close, DropIndex) has already folded the
		// log via walCheckpointLocked, which checkpointed every group; a
		// second checkpoint here would be redundant I/O.
		if db.opts.Durability != DurabilityNone && db.wal == nil {
			first = g.checkpointShards(g.allShards())
		}
		// The checkpoint above is the only publish point: closing must
		// not sync a stale payload, so the pools are discarded (their
		// frames are clean after a successful checkpoint) and the files
		// closed without a further checkpoint.
		for _, df := range g.files {
			if err := df.CloseDiscard(); err != nil && first == nil {
				first = err
			}
		}
		if g.manifest != nil {
			if err := g.manifest.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i, pool := range g.pools {
		if pool == nil {
			continue
		}
		// Push tree-cache state down before the pool closes.
		if err := g.sharded.Shard(i).DropCache(); err != nil && first == nil {
			first = err
		}
		if err := pool.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropCaches flushes every index's in-memory node cache so subsequent
// reads go through the page files (and their buffer pools, when
// configured). Cold-cache measurements call this between the build and
// measure phases; it takes the catalog write lock, so no catalog changes
// may race it, and each index's write lock, so no mutations are in flight.
func (db *Database) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var first error
	for _, name := range db.order {
		g := db.groups[name]
		ids := g.allShards()
		g.sharded.LockShards(ids)
		err := g.sharded.DropCache()
		g.sharded.UnlockShards(ids)
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropPageCaches is DropCaches plus the page layers below it: every buffer
// pool is reset (dirty frames flushed, unpinned frames dropped) and every
// disk-backed page file asks the OS to evict its page-cache contents
// (posix_fadvise DONTNEED; a no-op on in-memory files and non-Linux
// systems). After it returns, the next query's reads hit the actual device —
// this is what the cold-cache benchmark calls between iterations. Locking
// matches DropCaches: the catalog write lock plus every index's write locks.
func (db *Database) DropPageCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var first error
	for _, name := range db.order {
		g := db.groups[name]
		ids := g.allShards()
		g.sharded.LockShards(ids)
		if err := g.sharded.DropCache(); err != nil && first == nil {
			first = err
		}
		for _, pool := range g.pools {
			if pool == nil {
				continue
			}
			if err := pool.Reset(); err != nil && first == nil {
				first = err
			}
		}
		for _, f := range g.files {
			if f == nil {
				continue
			}
			if err := f.DropOSCache(); err != nil && first == nil {
				first = err
			}
		}
		g.sharded.UnlockShards(ids)
	}
	return first
}

// PoolStats aggregates the buffer-pool counters over every index. ok is
// false when the database was opened without a pool (Options.PoolPages 0).
func (db *Database) PoolStats() (BufferPoolStats, bool) {
	if db.opts.PoolPages <= 0 {
		return BufferPoolStats{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var agg BufferPoolStats
	for _, g := range db.groups {
		for _, p := range g.pools {
			if p != nil {
				agg.Add(p.PoolStats())
			}
		}
	}
	return agg, true
}

// NodeCacheStats aggregates the decoded-node cache counters over every
// index: cumulative hits and misses, and the nodes currently resident.
func (db *Database) NodeCacheStats() NodeCacheStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var agg NodeCacheStats
	for _, g := range db.groups {
		st := g.sharded.NodeCacheStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Entries += st.Entries
	}
	return agg
}

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.sch }

// Store returns the underlying object store (read-mostly access; prefer
// the Database mutation methods, which maintain indexes).
func (db *Database) Store() *store.Store { return db.st }

// Coding returns the default class coding.
func (db *Database) Coding() *Coding { return db.sch.Coding() }

// CreateIndex declares a U-index and builds it from the current objects.
// Each index lives in its own page files with the paper's 1024-byte pages —
// in memory by default, or crash-safe files under Options.Dir when set;
// with Options.PoolPages set, a buffer pool sits in front of each file.
// With Options.Shards above 1 the index is partitioned into shards by
// class-code intervals (see Options.Shards).
//
// With Dir set, an existing file layout is reopened from its last
// checkpoint instead of rebuilding — a single Dir/<name>.uidx file, or a
// Dir/<name>.manifest plus its Dir/<name>.shard<i>.uidx files, whichever
// exists; the on-disk layout's shard count wins over Options.Shards. The
// caller must present the same spec and an object store with the same
// contents (see Load). Corruption — structural damage or a checksum-failing
// page — is surfaced as an error matching ErrCorruptFile or ErrCorruptPage,
// never silently rebuilt over. A freshly built index is checkpointed before
// CreateIndex returns.
func (db *Database) CreateIndex(spec IndexSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.groups[spec.Name]; dup {
		return fmt.Errorf("uindex: index %q already exists", spec.Name)
	}
	if spec.NodeCacheSize == 0 {
		spec.NodeCacheSize = db.opts.NodeCacheSize
	}
	if db.opts.NoPrefetch {
		spec.NoPrefetch = true
	}
	g, err := db.openGroupLocked(spec)
	if err != nil {
		return err
	}
	db.groups[spec.Name] = g
	db.order = append(db.order, spec.Name)
	if db.wal != nil {
		// Catalog changes do not ride the log: fold everything now so the
		// store snapshot on disk records the new index declaration and
		// recovery reopens it instead of diverging.
		if err := db.walCheckpointLocked(); err != nil {
			return fmt.Errorf("uindex: index %q: checkpointing catalog change: %w", spec.Name, err)
		}
	}
	return nil
}

// openGroupLocked creates or reopens the group for one index spec, deciding
// between the unsharded single-file layout and the sharded layout.
func (db *Database) openGroupLocked(spec IndexSpec) (*indexGroup, error) {
	// A throwaway in-memory index validates the spec and yields the
	// class codes the shard map partitions (the terminal class's
	// hierarchy, which is exactly the set of position-0 codes).
	tmp, err := core.New(pager.NewMemFile(0), db.st, spec)
	if err != nil {
		return nil, err
	}
	codes := tmp.ShardCodes()

	want := db.opts.Shards
	if want > pager.MaxShards {
		want = pager.MaxShards
	}
	if db.opts.Dir == "" {
		return db.buildMemGroup(spec, core.NewShardMap(codes, want))
	}
	manifestPath := filepath.Join(db.opts.Dir, spec.Name+".manifest")
	legacyPath := filepath.Join(db.opts.Dir, spec.Name+".uidx")
	if _, statErr := os.Stat(manifestPath); statErr == nil {
		return db.reopenShardedGroup(spec, manifestPath)
	} else if !errors.Is(statErr, fs.ErrNotExist) {
		return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, statErr)
	}
	if _, statErr := os.Stat(legacyPath); statErr == nil {
		return db.openSingleFileGroup(spec, legacyPath, false)
	} else if !errors.Is(statErr, fs.ErrNotExist) {
		return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, statErr)
	}
	smap := core.NewShardMap(codes, want)
	if smap.Shards() == 1 {
		return db.openSingleFileGroup(spec, legacyPath, true)
	}
	return db.createShardedGroup(spec, smap, manifestPath)
}

// wrapPool places a buffer pool in front of a page file when the database is
// configured with one.
func (db *Database) wrapPool(f pager.File) (pager.File, *bufferpool.Pool, error) {
	if db.opts.PoolPages <= 0 {
		return f, nil, nil
	}
	pool, err := bufferpool.New(f, bufferpool.Config{
		Pages:  db.opts.PoolPages,
		Policy: db.opts.PoolPolicy,
	})
	if err != nil {
		return nil, nil, err
	}
	return pool, pool, nil
}

// buildMemGroup builds a fresh in-memory group (any shard count).
func (db *Database) buildMemGroup(spec IndexSpec, smap *core.ShardMap) (*indexGroup, error) {
	n := smap.Shards()
	shards := make([]*core.Index, n)
	pools := make([]*bufferpool.Pool, n)
	for i := range shards {
		f, pool, err := db.wrapPool(pager.NewMemFile(0))
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		pools[i] = pool
		shards[i], err = core.New(f, db.st, spec)
		if err != nil {
			return nil, err
		}
	}
	sh, err := core.NewSharded(shards, smap)
	if err != nil {
		return nil, err
	}
	if err := sh.Build(); err != nil {
		return nil, err
	}
	return &indexGroup{
		name:        spec.Name,
		sharded:     sh,
		pools:       pools,
		files:       make([]*pager.DiskFile, n),
		shardWrites: make([]atomic.Uint64, n),
	}, nil
}

// openSingleFileGroup creates or reopens the unsharded disk layout: one
// shard on one Dir/<name>.uidx file, no manifest.
func (db *Database) openSingleFileGroup(spec IndexSpec, path string, create bool) (*indexGroup, error) {
	var (
		df         *pager.DiskFile
		err        error
		reopen     bool
		reopenMeta pager.PageID
	)
	if create {
		df, err = pager.CreateDiskFile(path, 0)
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
	} else {
		df, err = pager.OpenDiskFile(path)
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		if pl := df.Payload(); len(pl) == 4 {
			reopenMeta = pager.PageID(binary.BigEndian.Uint32(pl))
			reopen = true
		} else if len(pl) != 0 {
			df.CloseDiscard()
			return nil, fmt.Errorf("uindex: index %q: %w: checkpoint payload has unexpected length %d",
				spec.Name, ErrCorruptFile, len(pl))
		}
		// An empty payload means the file was created but never
		// checkpointed with a built index: build fresh onto it.
	}
	f, pool, err := db.wrapPool(df)
	if err != nil {
		df.CloseDiscard()
		return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
	}
	var ix *core.Index
	if reopen {
		ix, err = core.Open(f, db.st, spec, reopenMeta)
	} else {
		ix, err = core.New(f, db.st, spec)
		if err == nil {
			err = ix.Build()
		}
	}
	if err != nil {
		df.CloseDiscard()
		return nil, err
	}
	smap := core.NewShardMap(nil, 1)
	sh, err := core.NewSharded([]*core.Index{ix}, smap)
	if err != nil {
		df.CloseDiscard()
		return nil, err
	}
	g := &indexGroup{
		name:        spec.Name,
		sharded:     sh,
		pools:       []*bufferpool.Pool{pool},
		files:       []*pager.DiskFile{df},
		shardWrites: make([]atomic.Uint64, 1),
	}
	if !reopen {
		// Make the freshly built index durable so a reopened file is
		// self-describing from the start.
		if err := g.checkpointShards(g.allShards()); err != nil {
			return nil, fmt.Errorf("uindex: index %q: checkpointing initial build: %w", spec.Name, err)
		}
	}
	return g, nil
}

// createShardedGroup builds a fresh sharded disk layout: one shard file per
// interval plus the manifest. The manifest is created before the build (so
// every on-disk artifact exists from the start) and committed again after
// the initial checkpoint; a crash in between reopens to the consistent
// empty state and rebuilds.
func (db *Database) createShardedGroup(spec IndexSpec, smap *core.ShardMap, manifestPath string) (g *indexGroup, err error) {
	n := smap.Shards()
	files := make([]*pager.DiskFile, n)
	defer func() {
		if err != nil {
			for _, df := range files {
				if df != nil {
					df.CloseDiscard()
				}
			}
		}
	}()
	for i := range files {
		files[i], err = pager.CreateDiskFile(db.shardPath(spec.Name, i), 0)
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
	}
	gens := make([]uint64, n)
	bounds := make([][]byte, 0, n-1)
	for i, df := range files {
		gens[i] = df.Generation()
		if i > 0 {
			bounds = append(bounds, []byte(smap.Bounds()[i-1]))
		}
	}
	manifest, err := pager.CreateManifestFile(manifestPath, bounds, gens)
	if err != nil {
		return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
	}
	shards := make([]*core.Index, n)
	pools := make([]*bufferpool.Pool, n)
	for i, df := range files {
		var f pager.File
		f, pools[i], err = db.wrapPool(df)
		if err == nil {
			shards[i], err = core.New(f, db.st, spec)
		}
		if err != nil {
			manifest.Close()
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
	}
	sh, nerr := core.NewSharded(shards, smap)
	if nerr == nil {
		nerr = sh.Build()
	}
	if nerr != nil {
		err = nerr
		manifest.Close()
		return nil, err
	}
	g = &indexGroup{
		name:        spec.Name,
		sharded:     sh,
		pools:       pools,
		files:       files,
		manifest:    manifest,
		shardWrites: make([]atomic.Uint64, n),
	}
	if err = g.checkpointShards(g.allShards()); err != nil {
		manifest.Close()
		return nil, fmt.Errorf("uindex: index %q: checkpointing initial build: %w", spec.Name, err)
	}
	return g, nil
}

// reopenShardedGroup reopens a sharded disk layout from its manifest: shard
// count and routing bounds come from the manifest (Options.Shards is
// ignored), and every shard file is opened pinned AT its manifest-recorded
// generation, rolling back any shard whose checkpoint outran the commit.
func (db *Database) reopenShardedGroup(spec IndexSpec, manifestPath string) (g *indexGroup, err error) {
	manifest, err := pager.OpenManifestFile(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
	}
	defer func() {
		if err != nil {
			manifest.Close()
		}
	}()
	rawBounds := manifest.Bounds()
	codes := make([]encoding.Code, len(rawBounds))
	for i, b := range rawBounds {
		codes[i] = encoding.Code(b)
	}
	smap, err := core.ShardMapFromBounds(codes)
	if err != nil {
		return nil, fmt.Errorf("uindex: index %q: %w: %v", spec.Name, ErrCorruptFile, err)
	}
	n := manifest.Shards()
	gens := manifest.Gens()
	files := make([]*pager.DiskFile, n)
	defer func() {
		if err != nil {
			for _, df := range files {
				if df != nil {
					df.CloseDiscard()
				}
			}
		}
	}()
	built, unbuilt := 0, 0
	metas := make([]pager.PageID, n)
	for i := range files {
		files[i], err = pager.OpenDiskFileAt(db.shardPath(spec.Name, i), gens[i])
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		switch pl := files[i].Payload(); len(pl) {
		case 4:
			metas[i] = pager.PageID(binary.BigEndian.Uint32(pl))
			built++
		case 0:
			// Created but never checkpointed with a built index — only
			// consistent when every shard is in that state.
			unbuilt++
		default:
			err = fmt.Errorf("uindex: index %q shard %d: %w: checkpoint payload has unexpected length %d",
				spec.Name, i, ErrCorruptFile, len(pl))
			return nil, err
		}
	}
	if built > 0 && unbuilt > 0 {
		err = fmt.Errorf("uindex: index %q: %w: %d shards built, %d empty under one manifest commit",
			spec.Name, ErrCorruptFile, built, unbuilt)
		return nil, err
	}
	shards := make([]*core.Index, n)
	pools := make([]*bufferpool.Pool, n)
	for i, df := range files {
		var f pager.File
		f, pools[i], err = db.wrapPool(df)
		if err != nil {
			return nil, fmt.Errorf("uindex: index %q: %w", spec.Name, err)
		}
		if built > 0 {
			shards[i], err = core.Open(f, db.st, spec, metas[i])
		} else {
			shards[i], err = core.New(f, db.st, spec)
		}
		if err != nil {
			return nil, err
		}
	}
	sh, err := core.NewSharded(shards, smap)
	if err != nil {
		return nil, err
	}
	if built == 0 {
		if err = sh.Build(); err != nil {
			return nil, err
		}
	}
	g = &indexGroup{
		name:        spec.Name,
		sharded:     sh,
		pools:       pools,
		files:       files,
		manifest:    manifest,
		shardWrites: make([]atomic.Uint64, n),
	}
	if built == 0 {
		if err = g.checkpointShards(g.allShards()); err != nil {
			err = fmt.Errorf("uindex: index %q: checkpointing initial build: %w", spec.Name, err)
			return nil, err
		}
	}
	return g, nil
}

// shardPath is the page file of one shard of a sharded disk layout.
func (db *Database) shardPath(name string, i int) string {
	return filepath.Join(db.opts.Dir, fmt.Sprintf("%s.shard%d.uidx", name, i))
}

// maybeSyncGroup checkpoints the given shards of one group after a mutation
// when the database runs with DurabilitySync; the caller holds those
// shards' writer locks.
func (db *Database) maybeSyncGroup(g *indexGroup, ids []int) error {
	if db.opts.Durability != DurabilitySync {
		return nil
	}
	return g.checkpointShards(ids)
}

// Checkpoint makes the current state of every disk-backed index durable.
// Each index checkpoints atomically under its write lock: a crash at any
// instant leaves each index file at exactly its previous or its new
// checkpoint. Queries proceed unblocked throughout. Databases without
// Options.Dir return nil immediately.
func (db *Database) Checkpoint() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	if db.wal != nil {
		return db.walCheckpointLocked()
	}
	for _, name := range db.order {
		g := db.groups[name]
		if !g.disk() {
			continue
		}
		ids := g.allShards()
		g.sharded.LockShards(ids)
		err := g.checkpointShards(ids)
		g.sharded.UnlockShards(ids)
		if err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", name, err)
		}
	}
	db.ctrs.checkpoints.Add(1)
	return nil
}

// DropIndex removes an index, closing its buffer pool and disk file if it
// has them. A disk-backed index is checkpointed first (unless the database
// runs with DurabilityNone); its file is left on disk and can be
// re-attached by a later CreateIndex with the same name.
func (db *Database) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	g, ok := db.groups[name]
	if !ok {
		return fmt.Errorf("uindex: no index %q: %w", name, ErrIndexNotFound)
	}
	if db.wal != nil && g.disk() {
		// The log is truncated right after this drop, so the orphaned file
		// must carry its own final checkpoint — holding only records the
		// log has made durable, or a crash before the truncation would
		// recover an index ahead of the replayable store.
		err := db.wal.log.WaitDurable(db.wal.log.LastAppended())
		if err == nil {
			err = g.checkpointShards(g.allShards())
		}
		if err != nil {
			return fmt.Errorf("uindex: checkpointing index %q before drop: %w", name, err)
		}
	}
	err := db.releaseGroupLocked(name)
	delete(db.groups, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	if db.wal != nil {
		if cerr := db.walCheckpointLocked(); cerr != nil && err == nil {
			err = fmt.Errorf("uindex: checkpointing catalog change: %w", cerr)
		}
	}
	return err
}

// Index returns a declared index by name — for a sharded index, its
// prototype shard, which carries the spec, coding, and key layout used by
// ParseQuery, Explain, and introspection. The returned index may be used
// for concurrent read-only calls; interleaving direct mutations with
// Database traffic is the caller's responsibility. Note that on a sharded
// index the prototype's Len covers only its own shard — use ShardStats for
// per-shard entry counts.
func (db *Database) Index(name string) (*core.Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g, ok := db.groups[name]
	if !ok {
		return nil, false
	}
	return g.sharded.Prototype(), true
}

// Indexes lists the declared index names in creation order.
func (db *Database) Indexes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// coveringGroups returns the groups (in creation order) an object of the
// given class can participate in. Acquiring write locks in this order —
// group creation order, then shard index ascending within each group, the
// single global order — keeps multi-index writers deadlock-free.
func (db *Database) coveringGroups(class string) []*indexGroup {
	out := make([]*indexGroup, 0, len(db.order))
	for _, name := range db.order {
		if g := db.groups[name]; g.sharded.Covers(class) {
			out = append(out, g)
		}
	}
	return out
}

// lockedGroup pairs a group with the shard locks a mutation holds on it.
type lockedGroup struct {
	g   *indexGroup
	ids []int
}

// lockCovering acquires, in the global lock order, the writer locks every
// covering group requires for a mutation of an object of the given class.
func (db *Database) lockCovering(class string) []lockedGroup {
	covering := db.coveringGroups(class)
	locked := make([]lockedGroup, 0, len(covering))
	for _, g := range covering {
		ids := g.sharded.WriteShards(class)
		g.sharded.LockShards(ids)
		locked = append(locked, lockedGroup{g: g, ids: ids})
	}
	return locked
}

// unlockAll releases the locks of lockCovering.
func unlockAll(locked []lockedGroup) {
	for _, lg := range locked {
		lg.g.sharded.UnlockShards(lg.ids)
	}
}

// countShardWrites records one successful mutation against each locked
// shard's write counter.
func countShardWrites(locked []lockedGroup) {
	for _, lg := range locked {
		for _, i := range lg.ids {
			lg.g.shardWrites[i].Add(1)
		}
	}
}

// Insert stores a new object and adds its entries to every index that can
// cover its class. Inserts of objects with disjoint index coverage run in
// parallel; only writers to the same index serialize. Queries are never
// blocked — they read the pinned tree version from before or after each
// index commit.
func (db *Database) Insert(class string, attrs Attrs) (OID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.wal != nil {
		return db.insertWAL(class, attrs)
	}
	oid, err := db.st.Insert(class, attrs)
	if err != nil {
		db.ctrs.countWrite(&db.ctrs.inserts, err)
		return 0, err
	}
	for _, g := range db.coveringGroups(class) {
		ids := g.sharded.WriteShards(class)
		g.sharded.LockShards(ids)
		err := g.sharded.Add(oid)
		if err == nil {
			err = db.maybeSyncGroup(g, ids)
		}
		g.sharded.UnlockShards(ids)
		if err != nil {
			db.ctrs.countWrite(&db.ctrs.inserts, err)
			return 0, fmt.Errorf("uindex: maintaining index %q: %w", g.name, err)
		}
		for _, i := range ids {
			g.shardWrites[i].Add(1)
		}
	}
	db.ctrs.countWrite(&db.ctrs.inserts, nil)
	return oid, nil
}

// Delete removes an object and its entries from every index. Objects that
// reference the deleted one keep dangling references; their index entries
// through the deleted object are removed here. The write locks of every
// covering index are held for the whole removal, so concurrent writers to
// those indexes wait while others proceed.
func (db *Database) Delete(oid OID) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	defer func() { db.ctrs.countWrite(&db.ctrs.deletes, err) }()
	o, ok := db.st.Get(oid)
	if !ok {
		return db.st.Delete(oid) // surfaces the store's not-found error
	}
	if db.wal != nil {
		return db.deleteWAL(oid, o.Class)
	}
	locked := db.lockCovering(o.Class)
	defer unlockAll(locked)
	for _, lg := range locked {
		if err := lg.g.sharded.Remove(oid); err != nil {
			return fmt.Errorf("uindex: maintaining index %q: %w", lg.g.name, err)
		}
	}
	if err := db.st.Delete(oid); err != nil {
		return err
	}
	for _, lg := range locked {
		if err := db.maybeSyncGroup(lg.g, lg.ids); err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", lg.g.name, err)
		}
	}
	countShardWrites(locked)
	return nil
}

// Set updates one attribute of an object, applying the batch index diff of
// the paper's Section 3.5 (a president switching companies is exactly one
// Set call). The write locks of every covering index are held across the
// before-enumeration, the store update, and the diff application, so each
// index moves atomically from the old state to the new one.
func (db *Database) Set(oid OID, attr string, v any) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	defer func() { db.ctrs.countWrite(&db.ctrs.sets, err) }()
	o, ok := db.st.Get(oid)
	if !ok {
		_, err := db.st.SetAttr(oid, attr, v) // surfaces the store's not-found error
		return err
	}
	if db.wal != nil {
		return db.setWAL(oid, o.Class, attr, v)
	}
	locked := db.lockCovering(o.Class)
	defer unlockAll(locked)
	olds := make([][][]byte, len(locked))
	for i, lg := range locked {
		old, err := lg.g.sharded.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", lg.g.name, err)
		}
		olds[i] = old
	}
	if _, err := db.st.SetAttr(oid, attr, v); err != nil {
		return err
	}
	for i, lg := range locked {
		newKeys, err := lg.g.sharded.EntriesFor(oid)
		if err != nil {
			return fmt.Errorf("uindex: index %q: %w", lg.g.name, err)
		}
		if err := lg.g.sharded.ApplyDiff(olds[i], newKeys); err != nil {
			return fmt.Errorf("uindex: index %q: %w", lg.g.name, err)
		}
	}
	for _, lg := range locked {
		if err := db.maybeSyncGroup(lg.g, lg.ids); err != nil {
			return fmt.Errorf("uindex: checkpointing index %q: %w", lg.g.name, err)
		}
	}
	countShardWrites(locked)
	return nil
}

// Get returns an object by id.
func (db *Database) Get(oid OID) (*Object, bool) {
	return db.st.Get(oid)
}

// QueryOption configures one Query call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	alg  Algorithm
	tr   *Tracker
	snap *Snapshot
}

// WithAlgorithm selects the retrieval strategy (default Parallel, the
// paper's Algorithm 1).
func WithAlgorithm(alg Algorithm) QueryOption {
	return func(c *queryConfig) { c.alg = alg }
}

// WithTracker shares a page-read tracker across queries, reproducing the
// paper's buffered experiment model (cumulative distinct pages). A shared
// tracker must not be used from multiple goroutines at once; give each
// goroutine its own and combine them with Tracker.Merge.
func WithTracker(tr *Tracker) QueryOption {
	return func(c *queryConfig) { c.tr = tr }
}

// WithSnapshot runs the query against a previously taken Snapshot instead
// of the current state: the same snapshot serves any number of queries, all
// seeing one consistent version regardless of concurrent writers.
func WithSnapshot(s *Snapshot) QueryOption {
	return func(c *queryConfig) { c.snap = s }
}

// Query runs a query on the named index. Options select the algorithm, a
// shared tracker, or a snapshot to read from; defaults are the parallel
// algorithm, a private tracker, and the current state. ctx cancellation
// aborts the scan at the next page visit.
//
// Every query runs against one immutable pinned version of the index tree,
// so concurrent mutations are neither observed mid-query nor waited on. Any
// number of Query calls run in parallel.
func (db *Database) Query(ctx context.Context, index string, q Query, opts ...QueryOption) ([]Match, Stats, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.snap != nil {
		return cfg.snap.query(ctx, index, q, cfg)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, Stats{}, ErrClosed
	}
	g, ok := db.groups[index]
	if !ok {
		err := fmt.Errorf("uindex: no index %q: %w", index, ErrIndexNotFound)
		db.ctrs.countQuery(Stats{}, err)
		return nil, Stats{}, err
	}
	ec := &core.ExecContext{Tracker: cfg.tr, Algorithm: cfg.alg}
	var out []Match
	stats, err := g.sharded.ExecuteCtx(ctx, q, ec, func(m Match) bool {
		out = append(out, m)
		return true
	})
	db.ctrs.countQuery(stats, err)
	return out, stats, err
}

// QueryJob names one query of a QueryParallel batch.
type QueryJob struct {
	// Index is the name of the index to query.
	Index string
	// Query is the query to run.
	Query Query
	// Algorithm selects the retrieval strategy; the zero value is
	// Parallel (the paper's Algorithm 1).
	Algorithm Algorithm
}

// QueryResult is the outcome of one QueryJob.
type QueryResult struct {
	Matches []Match
	Stats   Stats
	Err     error
}

// QueryParallel executes a batch of queries concurrently on a pool of
// worker goroutines and returns the results in job order. workers <= 0
// selects GOMAXPROCS. Every job runs under its own ExecContext (private
// tracker, per-job stats), so jobs never share mutable state. The batch
// runs against one database Snapshot, so every job sees the same consistent
// version while concurrent writers proceed unblocked. ctx cancellation
// aborts the remaining jobs at their next page visit.
//
// Per-job Stats.PagesRead counts are the same as the job would report run
// alone on a cold tracker; experiment-level totals that must match a
// sequential shared-tracker run can be rebuilt by merging per-job trackers
// (see Tracker.Merge) — QueryParallel itself keeps jobs independent.
//
// When ctx is canceled mid-batch, in-flight jobs abort at their next page
// visit and every not-yet-started job is drained without executing; both
// record ctx's error in their QueryResult, so the pool returns promptly
// instead of plowing through the remaining queue.
func (db *Database) QueryParallel(ctx context.Context, jobs []QueryJob, workers int) []QueryResult {
	results := make([]QueryResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	snap, err := db.Snapshot()
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	defer snap.Release()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					// Drain without executing: a canceled batch must not
					// start new scans just to have each one abort at its
					// first page visit.
					results[i] = QueryResult{Err: err}
					continue
				}
				job := jobs[i]
				ms, stats, err := snap.Query(ctx, job.Index, job.Query, WithAlgorithm(job.Algorithm))
				results[i] = QueryResult{Matches: ms, Stats: stats, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// ParseQuery parses a paper-notation textual query (see the querylang
// package for the grammar) against an index obtained from Index().
func ParseQuery(ix *core.Index, query string) (Query, error) {
	return querylang.Parse(ix, query)
}

// ClassOf resolves an object id to its class name.
func (db *Database) ClassOf(oid OID) (string, bool) {
	o, ok := db.st.Get(oid)
	if !ok {
		return "", false
	}
	return o.Class, true
}

// CODTable renders the paper's COD relation (Section 3) for display.
func (db *Database) CODTable() []string {
	var out []string
	for _, row := range db.sch.Coding().Table() { // rows sorted by code
		out = append(out, fmt.Sprintf("%-24s COD %s", row.Class, row.Code.Compact()))
	}
	return out
}
