package uindex

// Database persistence: Save writes a self-contained binary snapshot —
// schema declarations, every object, and every index declaration — and Load
// reconstructs the database, reassigning the identical class codes
// (deterministic in declaration order) and rebuilding the indexes with bulk
// loads. The format is versioned and uses only length-prefixed primitives.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/encoding"
	"repro/internal/store"
)

// ErrInvalidSnapshot reports that the input handed to Load/LoadWith is not a
// well-formed database snapshot: wrong magic, an unsupported format version,
// a checksum mismatch, or corrupt section data. Every Load failure caused by
// the input matches it with errors.Is.
var ErrInvalidSnapshot = errors.New("uindex: invalid database snapshot")

const (
	snapshotMagic = 0x554F4442 // "UODB"
	// Version 2 appends a CRC32C trailer over the whole snapshot, so any
	// corruption — even in value bytes no parser validates — is detected.
	snapshotVersion = 2

	// snapshotPreallocCap bounds slice preallocation from untrusted counts:
	// larger counts still load (slices grow), but a corrupt count cannot
	// balloon memory before the data runs out.
	snapshotPreallocCap = 1 << 16
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// invalidSnapshot tags an input-caused Load error with ErrInvalidSnapshot,
// keeping the original error in the chain for errors.Is/As.
func invalidSnapshot(err error) error {
	if err == nil || errors.Is(err, ErrInvalidSnapshot) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrInvalidSnapshot, err)
}

// value tags in the object section.
const (
	tagInt = iota
	tagUint64
	tagInt64
	tagFloat64
	tagString
	tagOID
	tagOIDs
)

type snapshotWriter struct {
	w   *bufio.Writer
	err error
}

func (sw *snapshotWriter) u32(v uint32) {
	if sw.err != nil {
		return
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, sw.err = sw.w.Write(b[:])
}

func (sw *snapshotWriter) uvarint(v uint64) {
	if sw.err != nil {
		return
	}
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	_, sw.err = sw.w.Write(b[:n])
}

func (sw *snapshotWriter) str(s string) {
	sw.uvarint(uint64(len(s)))
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.WriteString(s)
}

func (sw *snapshotWriter) byte(b byte) {
	if sw.err != nil {
		return
	}
	sw.err = sw.w.WriteByte(b)
}

type snapshotReader struct {
	r   *bufio.Reader
	err error
}

func (sr *snapshotReader) u32() uint32 {
	if sr.err != nil {
		return 0
	}
	var b [4]byte
	if _, sr.err = io.ReadFull(sr.r, b[:]); sr.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}

func (sr *snapshotReader) uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(sr.r)
	sr.err = err
	return v
}

func (sr *snapshotReader) str() string {
	n := sr.uvarint()
	if sr.err != nil {
		return ""
	}
	if n > 1<<20 {
		sr.err = fmt.Errorf("%w: implausible string length %d", ErrInvalidSnapshot, n)
		return ""
	}
	b := make([]byte, n)
	if _, sr.err = io.ReadFull(sr.r, b); sr.err != nil {
		return ""
	}
	return string(b)
}

func (sr *snapshotReader) byte() byte {
	if sr.err != nil {
		return 0
	}
	b, err := sr.r.ReadByte()
	sr.err = err
	return b
}

// Save writes a snapshot of the database (schema, objects, index
// declarations) to w, followed by a CRC32C trailer over everything written.
// Index contents are not serialized; Load rebuilds them, which is both
// simpler and usually faster than paging them in.
func (db *Database) Save(w io.Writer) error {
	objs, next := db.st.Snapshot()
	return db.saveSnapshot(w, objs, next)
}

// saveSnapshot is Save over a pre-taken store snapshot — the WAL
// checkpointer snapshots the store under its commit cut and encodes the
// bytes here, outside every lock.
func (db *Database) saveSnapshot(w io.Writer, objs []store.RestoredObject, next OID) error {
	h := crc32.New(snapshotCRC)
	sw := &snapshotWriter{w: bufio.NewWriter(io.MultiWriter(w, h))}
	sw.u32(snapshotMagic)
	sw.u32(snapshotVersion)

	// Schema, in declaration order (codes are deterministic in it).
	classes := db.sch.Classes()
	sw.uvarint(uint64(len(classes)))
	for _, name := range classes {
		cl, _ := db.sch.Class(name)
		sw.str(cl.Name)
		sw.str(cl.Super)
		sw.uvarint(uint64(len(cl.Attrs)))
		for _, a := range cl.Attrs {
			sw.str(a.Name)
			sw.str(a.Ref)
			sw.byte(byte(a.Type))
			if a.Multi {
				sw.byte(1)
			} else {
				sw.byte(0)
			}
		}
	}

	// Objects.
	sw.u32(uint32(next))
	sw.uvarint(uint64(len(objs)))
	for _, o := range objs {
		sw.u32(uint32(o.OID))
		sw.str(o.Class)
		sw.uvarint(uint64(len(o.Attrs)))
		// Deterministic attribute order.
		cl, _ := db.sch.Class(o.Class)
		written := 0
		emit := func(name string, v any) error {
			sw.str(name)
			switch x := v.(type) {
			case int:
				sw.byte(tagInt)
				sw.uvarint(uint64(x))
			case uint64:
				sw.byte(tagUint64)
				sw.uvarint(x)
			case int64:
				sw.byte(tagInt64)
				sw.uvarint(uint64(x))
			case float64:
				sw.byte(tagFloat64)
				sw.uvarint(math.Float64bits(x))
			case string:
				sw.byte(tagString)
				sw.str(x)
			case OID:
				sw.byte(tagOID)
				sw.u32(uint32(x))
			case []OID:
				sw.byte(tagOIDs)
				sw.uvarint(uint64(len(x)))
				for _, o := range x {
					sw.u32(uint32(o))
				}
			default:
				return fmt.Errorf("uindex: cannot serialize attribute %q of type %T", name, v)
			}
			written++
			return nil
		}
		// Walk the inheritance chain for a stable order.
		for c := cl; c != nil; {
			for _, a := range c.Attrs {
				if v, ok := o.Attrs[a.Name]; ok {
					if err := emit(a.Name, v); err != nil {
						return err
					}
				}
			}
			if c.Super == "" {
				break
			}
			c, _ = db.sch.Class(c.Super)
		}
		if written != len(o.Attrs) {
			return fmt.Errorf("uindex: object %d has %d attributes, serialized %d", o.OID, len(o.Attrs), written)
		}
	}

	// Index declarations.
	sw.uvarint(uint64(len(db.order)))
	for _, name := range db.order {
		spec := db.groups[name].sharded.Prototype().Spec()
		if spec.Coding != nil {
			return fmt.Errorf("uindex: index %q uses a custom coding; snapshots support default-coding indexes", name)
		}
		sw.str(spec.Name)
		sw.str(spec.Root)
		sw.uvarint(uint64(len(spec.Refs)))
		for _, r := range spec.Refs {
			sw.str(r)
		}
		sw.str(spec.Attr)
		sw.u32(uint32(spec.MaxEntries))
		if spec.NoCompression {
			sw.byte(1)
		} else {
			sw.byte(0)
		}
	}
	if sw.err != nil {
		return sw.err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	// The trailer goes to w alone: it is the checksum of everything above.
	var tr [4]byte
	binary.BigEndian.PutUint32(tr[:], h.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// Load reconstructs a database from a snapshot produced by Save.
func Load(r io.Reader) (*Database, error) {
	return LoadWith(r, Options{})
}

// LoadWith is Load with explicit Options; the rebuilt indexes run through
// buffer pools when opts.PoolPages is set. The whole snapshot is checksum-
// verified before any of it is parsed; every failure caused by the input
// matches ErrInvalidSnapshot.
func LoadWith(r io.Reader, opts Options) (*Database, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, invalidSnapshot(err)
	}
	if len(data) < 12 { // magic + version + trailer
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrInvalidSnapshot, len(data))
	}
	body := data[:len(data)-4]
	if got := binary.BigEndian.Uint32(data[len(data)-4:]); got != crc32.Checksum(body, snapshotCRC) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalidSnapshot)
	}
	sr := &snapshotReader{r: bufio.NewReader(bytes.NewReader(body))}
	if sr.u32() != snapshotMagic {
		if sr.err != nil {
			return nil, invalidSnapshot(sr.err)
		}
		return nil, fmt.Errorf("%w: bad magic", ErrInvalidSnapshot)
	}
	if v := sr.u32(); v != snapshotVersion {
		if sr.err != nil {
			return nil, invalidSnapshot(sr.err)
		}
		return nil, fmt.Errorf("%w: unsupported version %d", ErrInvalidSnapshot, v)
	}

	s := NewSchema()
	nClasses := sr.uvarint()
	for i := uint64(0); i < nClasses && sr.err == nil; i++ {
		name := sr.str()
		super := sr.str()
		nAttrs := sr.uvarint()
		attrs := make([]Attr, 0, min(nAttrs, snapshotPreallocCap))
		for j := uint64(0); j < nAttrs && sr.err == nil; j++ {
			a := Attr{Name: sr.str(), Ref: sr.str()}
			a.Type = attrType(sr.byte())
			a.Multi = sr.byte() == 1
			attrs = append(attrs, a)
		}
		if sr.err == nil {
			if err := s.AddClass(name, super, attrs...); err != nil {
				return nil, invalidSnapshot(err)
			}
		}
	}
	if sr.err != nil {
		return nil, invalidSnapshot(sr.err)
	}
	db, err := NewDatabaseWith(s, opts)
	if err != nil {
		return nil, err // environment (e.g. Options.Dir), not the snapshot
	}

	next := OID(sr.u32())
	nObjs := sr.uvarint()
	objs := make([]store.RestoredObject, 0, min(nObjs, snapshotPreallocCap))
	for i := uint64(0); i < nObjs && sr.err == nil; i++ {
		ro := store.RestoredObject{OID: OID(sr.u32()), Class: sr.str(), Attrs: Attrs{}}
		nAttrs := sr.uvarint()
		for j := uint64(0); j < nAttrs && sr.err == nil; j++ {
			name := sr.str()
			switch tag := sr.byte(); tag {
			case tagInt:
				ro.Attrs[name] = int(sr.uvarint())
			case tagUint64:
				ro.Attrs[name] = sr.uvarint()
			case tagInt64:
				ro.Attrs[name] = int64(sr.uvarint())
			case tagFloat64:
				ro.Attrs[name] = math.Float64frombits(sr.uvarint())
			case tagString:
				ro.Attrs[name] = sr.str()
			case tagOID:
				ro.Attrs[name] = OID(sr.u32())
			case tagOIDs:
				n := sr.uvarint()
				if n > 1<<20 {
					return nil, fmt.Errorf("%w: implausible reference list length %d", ErrInvalidSnapshot, n)
				}
				oids := make([]OID, n)
				for k := range oids {
					oids[k] = OID(sr.u32())
				}
				ro.Attrs[name] = oids
			default:
				if sr.err == nil {
					return nil, fmt.Errorf("%w: unknown value tag %d", ErrInvalidSnapshot, tag)
				}
			}
		}
		objs = append(objs, ro)
	}
	if sr.err != nil {
		return nil, invalidSnapshot(sr.err)
	}
	if err := db.st.Restore(objs, next); err != nil {
		return nil, invalidSnapshot(err)
	}

	nIdx := sr.uvarint()
	for i := uint64(0); i < nIdx && sr.err == nil; i++ {
		spec := IndexSpec{Name: sr.str(), Root: sr.str()}
		nRefs := sr.uvarint()
		for j := uint64(0); j < nRefs && sr.err == nil; j++ {
			spec.Refs = append(spec.Refs, sr.str())
		}
		spec.Attr = sr.str()
		spec.MaxEntries = int(sr.u32())
		spec.NoCompression = sr.byte() == 1
		if sr.err == nil {
			if err := db.CreateIndex(spec); err != nil {
				// Corruption of the reopened index files is a recovery
				// failure, not a malformed snapshot: keep the pager detail
				// in the chain under the recovery sentinel.
				var pageErr ErrCorruptPage
				if errors.Is(err, ErrCorruptFile) || errors.As(err, &pageErr) {
					return nil, fmt.Errorf("%w: reopening index %q: %w", ErrRecovery, spec.Name, err)
				}
				return nil, invalidSnapshot(err)
			}
		}
	}
	if sr.err != nil {
		return nil, invalidSnapshot(sr.err)
	}
	// Under DurabilityWAL the bootstrap checkpoint ran against the empty
	// pre-restore store; fold the restored objects and indexes into a fresh
	// checkpoint so the on-disk committed state matches what we return.
	if db.wal != nil {
		if err := db.Checkpoint(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// attrType narrows a byte back to an encoding.AttrType; unknown values
// surface as validation errors when the schema is used.
func attrType(b byte) encoding.AttrType {
	return encoding.AttrType(b)
}

// SaveFile writes a snapshot to a file.
func (db *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from a file.
func LoadFile(path string) (*Database, error) {
	return LoadFileWith(path, Options{})
}

// LoadFileWith reads a snapshot from a file with explicit Options.
func LoadFileWith(path string, opts Options) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	db, err := LoadWith(f, opts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return db, nil
}
