package uindex

import (
	"bytes"
	"errors"
	"testing"
)

// corruptibleSnapshot builds a small but representative snapshot (class
// hierarchy, references, multi-valued attributes, two indexes).
func corruptibleSnapshot(t testing.TB) []byte {
	t.Helper()
	db, _ := paperDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadCorruptionSweep flips every byte of a valid snapshot (several
// patterns each) and tries every truncation: Load must always return an
// error matching ErrInvalidSnapshot — never a panic, and never a
// silently-wrong database (the CRC trailer makes any mutation detectable).
func TestLoadCorruptionSweep(t *testing.T) {
	snap := corruptibleSnapshot(t)
	if _, err := Load(bytes.NewReader(snap)); err != nil {
		t.Fatalf("pristine snapshot does not load: %v", err)
	}
	check := func(mut []byte, what string) {
		t.Helper()
		db, err := Load(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", what)
		}
		if !errors.Is(err, ErrInvalidSnapshot) {
			t.Fatalf("%s: error %v does not match ErrInvalidSnapshot", what, err)
		}
		if db != nil {
			t.Fatalf("%s: non-nil database alongside error", what)
		}
	}
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for i := 0; i < len(snap); i += stride {
		for _, pat := range []byte{0xFF, 0x01, 0x80} {
			if snap[i]^pat == snap[i] {
				continue
			}
			mut := append([]byte(nil), snap...)
			mut[i] ^= pat
			check(mut, "byte flip")
		}
	}
	for n := 0; n < len(snap); n += stride {
		check(snap[:n:n], "truncation")
	}
	// Appended trailing garbage changes the checksummed length.
	check(append(append([]byte(nil), snap...), 0xAB), "trailing garbage")
}

// FuzzLoad asserts Load never panics on arbitrary input, and that accepted
// inputs produce a usable database.
func FuzzLoad(f *testing.F) {
	snap := corruptibleSnapshot(f)
	f.Add(snap)
	if len(snap) > 40 {
		f.Add(snap[:len(snap)/2])
		mut := append([]byte(nil), snap...)
		mut[17] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("UODB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalidSnapshot) {
				t.Fatalf("Load error %v does not match ErrInvalidSnapshot", err)
			}
			return
		}
		// Accepted: the database must be minimally usable.
		got.Indexes()
		if err := got.Close(); err != nil {
			t.Fatalf("closing loaded database: %v", err)
		}
	})
}
