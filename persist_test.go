package uindex

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db, ids := paperDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	re, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Same object population, same codes.
	if re.Store().Len() != db.Store().Len() {
		t.Fatalf("object count: %d vs %d", re.Store().Len(), db.Store().Len())
	}
	if got, want := re.CODTable(), db.CODTable(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("COD tables differ:\n%v\n%v", got, want)
	}
	// Same indexes, same answers under both algorithms.
	if fmt.Sprint(re.Indexes()) != fmt.Sprint(db.Indexes()) {
		t.Fatalf("indexes differ: %v vs %v", re.Indexes(), db.Indexes())
	}
	queries := []struct {
		index string
		q     Query
	}{
		{"color", Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}},
		{"color", Query{Value: Range("Blue", "Red")}},
		{"age", Query{Value: Exact(50)}},
		{"age", Query{Value: Exact(50), Distinct: 2}},
		{"age", Query{Value: Range(45, 60), Positions: []Position{Any, On("AutoCompany")}}},
	}
	for i, tc := range queries {
		a, _, err := db.Query(context.Background(), tc.index, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := re.Query(context.Background(), tc.index, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("query %d differs after reload:\n%v\n%v", i, a, b)
		}
	}
	// The reloaded database remains fully operational.
	v, err := re.Insert("Truck", Attrs{"Name": "New", "Color": "Red", "ManufacturedBy": ids["c1"]})
	if err != nil {
		t.Fatalf("insert after reload: %v", err)
	}
	ms, _, _ := re.Query(context.Background(), "color", Query{Value: Exact("Red"), Positions: []Position{On("Truck")}})
	if len(ms) != 1 || ms[0].Path[0].OID != v {
		t.Fatalf("post-reload query = %v", ms)
	}
	// OIDs continue from where they left off: no collision with old ones.
	if _, ok := db.Get(v); ok {
		t.Fatal("OID reuse across snapshots")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db, _ := paperDB(t)
	path := filepath.Join(t.TempDir(), "db.uodb")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	re, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if re.Store().Len() != db.Store().Len() {
		t.Fatal("file round trip lost objects")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadFile of missing file succeeded")
	}
}

// TestSaveLoadMultiValueAndCycles covers reference topologies only
// constructible via SetAttr: multi-value refs and REF cycles.
func TestSaveLoadMultiValueAndCycles(t *testing.T) {
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "",
		Attr{Name: "Age", Type: Uint64},
		Attr{Name: "Owns", Ref: "Auto", Multi: true}))
	must(s.AddClass("Auto", "",
		Attr{Name: "Mileage", Type: Uint64},
		Attr{Name: "UsedBy", Ref: "Employee"}))
	db, err := NewDatabase(s)
	must(err)
	must(db.CreateIndex(IndexSpec{Name: "own", Root: "Employee", Refs: []string{"Owns"}, Attr: "Mileage"}))
	e, err := db.Insert("Employee", Attrs{"Age": 40})
	must(err)
	a1, err := db.Insert("Auto", Attrs{"Mileage": 100, "UsedBy": e})
	must(err)
	a2, err := db.Insert("Auto", Attrs{"Mileage": 50, "UsedBy": e})
	must(err)
	must(db.Set(e, "Owns", []OID{a1, a2}))

	var buf bytes.Buffer
	must(db.Save(&buf))
	re, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load with cycle: %v", err)
	}
	ms, _, err := re.Query(context.Background(), "own", Query{Value: Range(uint64(60), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Path[1].OID != e {
		t.Fatalf("reloaded multi-ref query = %v", ms)
	}
	if got := re.Store().DerefMulti(e, "Owns"); len(got) != 2 {
		t.Fatalf("reloaded multi-ref = %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated snapshot.
	db, _ := paperDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{4, 2} {
		trunc := buf.Bytes()[:buf.Len()/frac]
		if _, err := Load(bytes.NewReader(trunc)); err == nil {
			t.Errorf("truncated snapshot (1/%d) accepted", frac)
		}
	}
	// Wrong version.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[7] = 99
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("future version accepted")
	}
}

// TestSnapshotDeterminism: saving twice yields identical bytes.
func TestSnapshotDeterminism(t *testing.T) {
	db, _ := paperDB(t)
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots are not deterministic")
	}
	// And a reloaded database saves to the same bytes again.
	re, err := Load(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := re.Save(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("save-load-save is not a fixed point")
	}
}
