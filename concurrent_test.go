package uindex

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stressDB builds a database large enough that queries span many index
// pages: a vehicle hierarchy over companies and presidents, with a
// class-hierarchy index (color) and a two-ref path index (age).
func stressDB(t testing.TB, poolPages int) *Database {
	t.Helper()
	return stressDBWith(t, Options{PoolPages: poolPages})
}

// stressDBWith is stressDB with full Options control (shard count, disk
// directory, durability) — the shard tests build the same deterministic
// database under every layout.
func stressDBWith(t testing.TB, opts Options) *Database {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Employee", "", Attr{Name: "Age", Type: Uint64}))
	must(s.AddClass("Company", "",
		Attr{Name: "Name", Type: String},
		Attr{Name: "President", Ref: "Employee"}))
	must(s.AddClass("Vehicle", "",
		Attr{Name: "Color", Type: String},
		Attr{Name: "ManufacturedBy", Ref: "Company"}))
	must(s.AddClass("Automobile", "Vehicle"))
	must(s.AddClass("Truck", "Vehicle"))
	must(s.AddClass("CompactAutomobile", "Automobile"))

	db, err := NewDatabaseWith(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1996))
	colors := []string{"Red", "Blue", "White", "Green", "Black", "Silver", "Yellow"}
	classes := []string{"Vehicle", "Automobile", "Truck", "CompactAutomobile"}

	var employees, companies []OID
	for i := 0; i < 60; i++ {
		oid, err := db.Insert("Employee", Attrs{"Age": uint64(30 + rng.Intn(40))})
		must(err)
		employees = append(employees, oid)
	}
	for i := 0; i < 30; i++ {
		oid, err := db.Insert("Company", Attrs{
			"Name":      fmt.Sprintf("Co-%02d", i),
			"President": employees[rng.Intn(len(employees))],
		})
		must(err)
		companies = append(companies, oid)
	}
	must(db.CreateIndex(IndexSpec{Name: "color", Root: "Vehicle", Attr: "Color"}))
	must(db.CreateIndex(IndexSpec{
		Name: "age", Root: "Vehicle", Refs: []string{"ManufacturedBy", "President"}, Attr: "Age"}))
	for i := 0; i < 600; i++ {
		_, err := db.Insert(classes[rng.Intn(len(classes))], Attrs{
			"Color":          colors[rng.Intn(len(colors))],
			"ManufacturedBy": companies[rng.Intn(len(companies))],
		})
		must(err)
	}
	return db
}

// stressQueries is the mixed exact/range/subtree/path workload every
// concurrency test in this package runs.
func stressQueries() []QueryJob {
	return []QueryJob{
		{Index: "color", Query: Query{Value: Exact("Red"), Positions: []Position{On("Vehicle")}}},
		{Index: "color", Query: Query{Value: Exact("Blue"), Positions: []Position{OnExact("Truck")}}},
		{Index: "color", Query: Query{Value: Range("Black", "Green"), Positions: []Position{On("Automobile")}}},
		{Index: "color", Query: Query{Value: OneOf("White", "Silver"), Positions: []Position{On("CompactAutomobile")}}},
		{Index: "color", Query: Query{Value: Exact("Green"), Positions: []Position{On("Vehicle")}}, Algorithm: Forward},
		{Index: "age", Query: Query{Value: Exact(uint64(45))}},
		// Positions are terminal-first: restrict the vehicle class at
		// position 2 of the Employee<-Company<-Vehicle path.
		{Index: "age", Query: Query{Value: Range(uint64(50), uint64(60)), Positions: []Position{Any, Any, On("Automobile")}}},
		{Index: "age", Query: Query{Value: Range(uint64(35), uint64(40))}, Algorithm: Forward},
		{Index: "age", Query: Query{Value: Exact(uint64(55)), Distinct: 2}},
	}
}

// TestConcurrentQueries runs the mixed workload from many goroutines (with
// and without a buffer pool) and checks every result against the
// sequential baseline. This is the engine-level -race regression test for
// the goroutine-safe read path.
func TestConcurrentQueries(t *testing.T) {
	for _, poolPages := range []int{0, 24} {
		t.Run(fmt.Sprintf("pool=%d", poolPages), func(t *testing.T) {
			db := stressDB(t, poolPages)
			defer db.Close()
			jobs := stressQueries()

			want := make([][]Match, len(jobs))
			for i, j := range jobs {
				ms, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm))
				if err != nil {
					t.Fatalf("baseline job %d: %v", i, err)
				}
				want[i] = ms
			}

			const goroutines = 10
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 5; rep++ {
						i := (g + rep) % len(jobs)
						j := jobs[i]
						ms, stats, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm))
						if err != nil {
							t.Errorf("g%d job %d: %v", g, i, err)
							return
						}
						if len(ms) != len(want[i]) {
							t.Errorf("g%d job %d: %d matches, want %d", g, i, len(ms), len(want[i]))
							return
						}
						if stats.PagesRead == 0 {
							t.Errorf("g%d job %d: no pages read", g, i)
							return
						}
					}
				}(g)
			}
			// Textual queries run concurrently with programmatic ones.
			cx, _ := db.Index("color")
			parsed, err := ParseQuery(cx, "(Color=Red, Vehicle*)")
			if err != nil {
				t.Fatalf("ParseQuery: %v", err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 10; rep++ {
					if _, _, err := db.Query(context.Background(), "color", parsed); err != nil {
						t.Errorf("parsed query: %v", err)
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

// TestQueryParallel checks the worker-pool API: results come back in job
// order and agree with sequential execution, for several worker counts.
func TestQueryParallel(t *testing.T) {
	db := stressDB(t, 32)
	defer db.Close()
	jobs := stressQueries()

	want := make([][]Match, len(jobs))
	for i, j := range jobs {
		ms, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	for _, workers := range []int{0, 1, 4, 16} {
		results := db.QueryParallel(context.Background(), jobs, workers)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if len(r.Matches) != len(want[i]) {
				t.Fatalf("workers=%d job %d: %d matches, want %d", workers, i, len(r.Matches), len(want[i]))
			}
			if r.Stats.Matches != len(want[i]) {
				t.Fatalf("workers=%d job %d: stats.Matches=%d, want %d", workers, i, r.Stats.Matches, len(want[i]))
			}
		}
	}

	// Unknown index surfaces as a per-job error, not a panic.
	bad := db.QueryParallel(context.Background(), []QueryJob{{Index: "nope", Query: Query{Value: Exact("Red")}}}, 2)
	if bad[0].Err == nil {
		t.Fatal("expected error for unknown index")
	}
}

// TestParallelTrackerInvariance is the Table-1/Figs-5-8 accounting
// acceptance criterion at the engine level: the distinct-page total of the
// workload run sequentially under one shared tracker equals the total from
// running it concurrently with per-goroutine trackers merged afterwards.
func TestParallelTrackerInvariance(t *testing.T) {
	db := stressDB(t, 0)
	defer db.Close()
	jobs := stressQueries()

	shared := NewTracker()
	for _, j := range jobs {
		if _, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm), WithTracker(shared)); err != nil {
			t.Fatal(err)
		}
	}

	per := make([]*Tracker, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		per[i] = NewTracker()
		wg.Add(1)
		go func(i int, j QueryJob) {
			defer wg.Done()
			if _, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm), WithTracker(per[i])); err != nil {
				t.Error(err)
			}
		}(i, j)
	}
	wg.Wait()

	merged := NewTracker()
	for _, tr := range per {
		merged.Merge(tr)
	}
	if merged.Reads() != shared.Reads() {
		t.Fatalf("merged per-goroutine pages %d != sequential shared pages %d",
			merged.Reads(), shared.Reads())
	}
}

// TestConcurrentReadersWithWriter interleaves the read workload with
// mutations through the facade. Results are nondeterministic by design; the
// test asserts race-freedom (under -race) and that every operation either
// succeeds or fails cleanly.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := stressDB(t, 24)
	defer db.Close()
	jobs := stressQueries()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; ; rep++ {
				select {
				case <-stop:
					return
				default:
				}
				j := jobs[(g+rep)%len(jobs)]
				if _, _, err := db.Query(context.Background(), j.Index, j.Query, WithAlgorithm(j.Algorithm)); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		companies := []OID{}
		for i := 0; i < 40; i++ {
			oid, err := db.Insert("Company", Attrs{"Name": fmt.Sprintf("W-%d", i)})
			if err != nil {
				t.Errorf("writer insert company: %v", err)
				return
			}
			companies = append(companies, oid)
			void, err := db.Insert("Automobile", Attrs{"Color": "Teal", "ManufacturedBy": oid})
			if err != nil {
				t.Errorf("writer insert vehicle: %v", err)
				return
			}
			if err := db.Set(void, "Color", "Maroon"); err != nil {
				t.Errorf("writer set: %v", err)
				return
			}
			if i%4 == 3 {
				if err := db.Delete(void); err != nil {
					t.Errorf("writer delete: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
}
